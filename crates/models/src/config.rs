//! Model configurations from List 1 (Appendix D) of the paper.
//!
//! Each model has up to three parameterisations: the large-scale simulation
//! setup of §5.3/§5.4, the shared-cluster setup of §5.6, and the reduced
//! testbed setup of §6.

use serde::{Deserialize, Serialize};

/// Which section of the paper a configuration reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelPreset {
    /// §5.3 dedicated-cluster simulations (also the default for §5.4 with a
    /// batch-size override).
    Dedicated,
    /// §5.6 shared-cluster simulations.
    Shared,
    /// §6 twelve-node testbed.
    Testbed,
}

/// DLRM configuration (List 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Per-GPU batch size.
    pub batch_per_gpu: usize,
    /// Number of top ("dense") MLP layers.
    pub num_dense_layers: usize,
    /// Width of the top MLP layers.
    pub dense_layer_size: usize,
    /// Number of bottom ("dense feature") MLP layers.
    pub num_feature_layers: usize,
    /// Width of the bottom MLP layers.
    pub feature_layer_size: usize,
    /// Embedding dimension (columns per table).
    pub embedding_dim: usize,
    /// Rows per embedding table.
    pub embedding_rows: usize,
    /// Number of embedding tables.
    pub num_tables: usize,
}

impl DlrmConfig {
    /// List 1, §5.3: 64 tables of 128 x 1e7, batch 128.
    pub fn dedicated() -> Self {
        DlrmConfig {
            batch_per_gpu: 128,
            num_dense_layers: 8,
            dense_layer_size: 2048,
            num_feature_layers: 16,
            feature_layer_size: 4096,
            embedding_dim: 128,
            embedding_rows: 10_000_000,
            num_tables: 64,
        }
    }

    /// List 1, §5.4 all-to-all study: 128 tables of 128 x 1e7; the batch size
    /// is swept from 32 to 2048.
    pub fn all_to_all(batch_per_gpu: usize) -> Self {
        DlrmConfig { batch_per_gpu, num_tables: 128, ..Self::dedicated() }
    }

    /// List 1, §5.6: 16 tables of 256 x 1e7, batch 256, smaller MLPs.
    pub fn shared() -> Self {
        DlrmConfig {
            batch_per_gpu: 256,
            num_dense_layers: 8,
            dense_layer_size: 1024,
            num_feature_layers: 16,
            feature_layer_size: 2048,
            embedding_dim: 256,
            embedding_rows: 10_000_000,
            num_tables: 16,
        }
    }

    /// List 1, §6 testbed: 12 tables of 32768 x 1e5, batch 64–512 (default
    /// 64), 4 dense layers of 1024, 8 feature layers of 2048.
    pub fn testbed(batch_per_gpu: usize) -> Self {
        DlrmConfig {
            batch_per_gpu,
            num_dense_layers: 4,
            dense_layer_size: 1024,
            num_feature_layers: 8,
            feature_layer_size: 2048,
            embedding_dim: 32_768,
            embedding_rows: 100_000,
            num_tables: 12,
        }
    }

    /// The §2.1 motivating example: 4 embedding tables with 512-column
    /// embeddings and a 22 GB total model size on 16 servers, used for the
    /// Figure 1 heatmaps (44 GB AllReduce transfers under pure data
    /// parallelism, 4 GB under the hybrid strategy). The row count is
    /// calibrated so that the fp32 model totals ~22 GB, which is the number
    /// the figure's arithmetic is built on.
    pub fn motivating_example() -> Self {
        DlrmConfig {
            batch_per_gpu: 8192,
            num_dense_layers: 8,
            dense_layer_size: 1024,
            num_feature_layers: 8,
            feature_layer_size: 512,
            embedding_dim: 512,
            embedding_rows: 2_650_000,
            num_tables: 4,
        }
    }
}

/// CANDLE (Uno) configuration (List 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandleConfig {
    /// Per-GPU batch size.
    pub batch_per_gpu: usize,
    /// Number of dense layers.
    pub num_dense_layers: usize,
    /// Width of dense layers.
    pub dense_layer_size: usize,
    /// Number of feature layers.
    pub num_feature_layers: usize,
    /// Width of feature layers.
    pub feature_layer_size: usize,
}

impl CandleConfig {
    /// §5.3: 8 x 16384 dense + 16 x 16384 feature layers, batch 256.
    pub fn dedicated() -> Self {
        CandleConfig {
            batch_per_gpu: 256,
            num_dense_layers: 8,
            dense_layer_size: 16_384,
            num_feature_layers: 16,
            feature_layer_size: 16_384,
        }
    }

    /// §5.6: 4096-wide layers, batch 256.
    pub fn shared() -> Self {
        CandleConfig {
            batch_per_gpu: 256,
            num_dense_layers: 8,
            dense_layer_size: 4_096,
            num_feature_layers: 16,
            feature_layer_size: 4_096,
        }
    }

    /// §6 testbed: 4 dense + 8 feature layers of 4096, batch 10.
    pub fn testbed() -> Self {
        CandleConfig {
            batch_per_gpu: 10,
            num_dense_layers: 4,
            dense_layer_size: 4_096,
            num_feature_layers: 8,
            feature_layer_size: 4_096,
        }
    }
}

/// BERT configuration (List 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BertConfig {
    /// Per-GPU batch size.
    pub batch_per_gpu: usize,
    /// Number of transformer blocks.
    pub num_blocks: usize,
    /// Hidden layer size.
    pub hidden: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Attention heads.
    pub heads: usize,
    /// Token embedding size (vocabulary projection dimension).
    pub embed_size: usize,
}

impl BertConfig {
    /// §5.3: 12 blocks, hidden 1024, seq 64, 16 heads, embed 512, batch 16.
    pub fn dedicated() -> Self {
        BertConfig {
            batch_per_gpu: 16,
            num_blocks: 12,
            hidden: 1024,
            seq_len: 64,
            heads: 16,
            embed_size: 512,
        }
    }

    /// §5.6: 6 blocks, hidden 768, seq 256, 6 heads, embed 512, batch 16.
    pub fn shared() -> Self {
        BertConfig {
            batch_per_gpu: 16,
            num_blocks: 6,
            hidden: 768,
            seq_len: 256,
            heads: 6,
            embed_size: 512,
        }
    }

    /// §6 testbed: 6 blocks, hidden 1024, seq 1024, 16 heads, batch 2.
    pub fn testbed() -> Self {
        BertConfig {
            batch_per_gpu: 2,
            num_blocks: 6,
            hidden: 1024,
            seq_len: 1024,
            heads: 16,
            embed_size: 512,
        }
    }
}

/// NCF configuration (List 1, §5.3 only).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NcfConfig {
    /// Per-GPU batch size.
    pub batch_per_gpu: usize,
    /// Number of dense (MLP tower) layers.
    pub num_dense_layers: usize,
    /// Width of the dense layers.
    pub dense_layer_size: usize,
    /// Number of user embedding tables for each of the MF and MLP branches.
    pub user_tables_per_branch: usize,
    /// Rows per user table.
    pub users_per_table: usize,
    /// Number of item embedding tables for each of the MF and MLP branches.
    pub item_tables_per_branch: usize,
    /// Rows per item table.
    pub items_per_table: usize,
    /// Matrix-factorisation embedding dimension.
    pub mf_dim: usize,
    /// MLP-branch embedding dimension.
    pub mlp_dim: usize,
}

impl NcfConfig {
    /// §5.3 configuration.
    pub fn dedicated() -> Self {
        NcfConfig {
            batch_per_gpu: 128,
            num_dense_layers: 8,
            dense_layer_size: 4096,
            user_tables_per_branch: 32,
            users_per_table: 1_000_000,
            item_tables_per_branch: 32,
            items_per_table: 1_000_000,
            mf_dim: 64,
            mlp_dim: 128,
        }
    }
}

/// ResNet-50 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Per-GPU batch size: 128 in §5.3, 20 in §6.
    pub batch_per_gpu: usize,
}

impl ResNetConfig {
    /// §5.3 configuration.
    pub fn dedicated() -> Self {
        ResNetConfig { batch_per_gpu: 128 }
    }
    /// §6 testbed configuration.
    pub fn testbed() -> Self {
        ResNetConfig { batch_per_gpu: 20 }
    }
}

/// VGG-16 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VggConfig {
    /// Per-GPU batch size: 64 in §5.3/§5.6, 32 in §6.
    pub batch_per_gpu: usize,
}

impl VggConfig {
    /// §5.3 / §5.6 configuration.
    pub fn dedicated() -> Self {
        VggConfig { batch_per_gpu: 64 }
    }
    /// §6 testbed configuration.
    pub fn testbed() -> Self {
        VggConfig { batch_per_gpu: 32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_presets_match_list1() {
        let d = DlrmConfig::dedicated();
        assert_eq!(d.num_tables, 64);
        assert_eq!(d.embedding_dim, 128);
        assert_eq!(d.batch_per_gpu, 128);
        let s = DlrmConfig::shared();
        assert_eq!(s.num_tables, 16);
        assert_eq!(s.embedding_dim, 256);
        let t = DlrmConfig::testbed(64);
        assert_eq!(t.num_tables, 12);
        assert_eq!(t.embedding_rows, 100_000);
        let a = DlrmConfig::all_to_all(2048);
        assert_eq!(a.num_tables, 128);
        assert_eq!(a.batch_per_gpu, 2048);
    }

    #[test]
    fn bert_presets_match_list1() {
        assert_eq!(BertConfig::dedicated().num_blocks, 12);
        assert_eq!(BertConfig::shared().hidden, 768);
        assert_eq!(BertConfig::testbed().seq_len, 1024);
    }

    #[test]
    fn candle_presets_match_list1() {
        assert_eq!(CandleConfig::dedicated().dense_layer_size, 16_384);
        assert_eq!(CandleConfig::testbed().batch_per_gpu, 10);
    }

    #[test]
    fn ncf_preset_matches_list1() {
        let c = NcfConfig::dedicated();
        assert_eq!(c.user_tables_per_branch + c.item_tables_per_branch, 64);
        assert_eq!(c.mf_dim, 64);
        assert_eq!(c.mlp_dim, 128);
    }
}
