//! Directed multigraph with per-edge capacity.
//!
//! Physical interconnects in TopoOpt are *degree constrained*: each server has
//! `d` transmit interfaces and `d` receive interfaces. A direct-connect
//! topology is therefore a directed multigraph where out-degree and in-degree
//! of every node are bounded by `d`, and parallel edges between the same pair
//! of servers are meaningful (they add capacity).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of a node (server / ToR switch) in a [`Graph`].
pub type NodeId = usize;

/// Index of an edge (fiber / interface pairing) in a [`Graph`].
pub type EdgeId = usize;

/// A single directed edge with a capacity in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// True if the edge has been logically removed.
    pub removed: bool,
}

/// A directed multigraph with per-edge capacities.
///
/// Edges are never physically deleted (so `EdgeId`s stay stable); they are
/// tombstoned instead. Adjacency is maintained incrementally for O(deg)
/// neighbour iteration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Create an empty graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph { n, edges: Vec::new(), out_adj: vec![Vec::new(); n], in_adj: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of live (non-removed) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().filter(|e| !e.removed).count()
    }

    /// Add a directed edge and return its id.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is out of range or capacity is not positive.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, capacity_bps: f64) -> EdgeId {
        assert!(src < self.n && dst < self.n, "node id out of range");
        assert!(capacity_bps > 0.0, "capacity must be positive");
        let id = self.edges.len();
        self.edges.push(Edge { src, dst, capacity_bps, removed: false });
        self.out_adj[src].push(id);
        self.in_adj[dst].push(id);
        id
    }

    /// Add a bidirectional link (two directed edges) and return both ids.
    pub fn add_bidi_edge(&mut self, a: NodeId, b: NodeId, capacity_bps: f64) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, capacity_bps), self.add_edge(b, a, capacity_bps))
    }

    /// Tombstone an edge. The id remains valid but the edge no longer
    /// participates in adjacency queries.
    pub fn remove_edge(&mut self, id: EdgeId) {
        self.edges[id].removed = true;
    }

    /// Access an edge by id (including removed edges).
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// Mutable access to an edge by id.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id]
    }

    /// Iterate over live edges as `(EdgeId, &Edge)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().filter(|(_, e)| !e.removed)
    }

    /// Live out-edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.out_adj[node].iter().map(move |&id| (id, &self.edges[id])).filter(|(_, e)| !e.removed)
    }

    /// Live in-edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.in_adj[node].iter().map(move |&id| (id, &self.edges[id])).filter(|(_, e)| !e.removed)
    }

    /// Out-degree of `node` (counting parallel edges).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges(node).count()
    }

    /// In-degree of `node` (counting parallel edges).
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges(node).count()
    }

    /// Distinct out-neighbours of `node`.
    pub fn out_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.out_edges(node).map(|(_, e)| e.dst).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct in-neighbours of `node`.
    pub fn in_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.in_edges(node).map(|(_, e)| e.src).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of parallel live edges from `src` to `dst`.
    pub fn multiplicity(&self, src: NodeId, dst: NodeId) -> usize {
        self.out_edges(src).filter(|(_, e)| e.dst == dst).count()
    }

    /// Total capacity (bps) of all parallel live edges from `src` to `dst`.
    pub fn capacity_between(&self, src: NodeId, dst: NodeId) -> f64 {
        self.out_edges(src).filter(|(_, e)| e.dst == dst).map(|(_, e)| e.capacity_bps).sum()
    }

    /// True if there is at least one live edge from `src` to `dst`.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out_edges(src).any(|(_, e)| e.dst == dst)
    }

    /// Total live capacity leaving `node`, in bps.
    pub fn total_out_capacity(&self, node: NodeId) -> f64 {
        self.out_edges(node).map(|(_, e)| e.capacity_bps).sum()
    }

    /// Total network capacity (sum over all live edges), in bps.
    pub fn total_capacity(&self) -> f64 {
        self.edges().map(|(_, e)| e.capacity_bps).sum()
    }

    /// Merge another graph's edges into this one. Both graphs must have the
    /// same node count. Returns the ids of the newly added edges.
    pub fn union_edges(&mut self, other: &Graph) -> Vec<EdgeId> {
        assert_eq!(self.n, other.n, "graphs must have equal node counts");
        other.edges().map(|(_, e)| self.add_edge(e.src, e.dst, e.capacity_bps)).collect()
    }

    /// True if every node can reach every other node over live edges
    /// (strong connectivity).
    pub fn is_strongly_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.reachable_from(0).len() == self.n && self.reverse().reachable_from(0).len() == self.n
    }

    /// Set of nodes reachable from `start` over live edges (including
    /// `start` itself), as a sorted vector.
    pub fn reachable_from(&self, start: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for (_, e) in self.out_edges(u) {
                if !seen[e.dst] {
                    seen[e.dst] = true;
                    stack.push(e.dst);
                }
            }
        }
        (0..self.n).filter(|&i| seen[i]).collect()
    }

    /// The graph with every edge reversed.
    pub fn reverse(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for (_, e) in self.edges() {
            g.add_edge(e.dst, e.src, e.capacity_bps);
        }
        g
    }

    /// Degree histogram: map from out-degree to number of nodes with that
    /// degree.
    pub fn out_degree_histogram(&self) -> BTreeMap<usize, usize> {
        let mut h = BTreeMap::new();
        for v in 0..self.n {
            *h.entry(self.out_degree(v)).or_insert(0) += 1;
        }
        h
    }

    /// Maximum out-degree over all nodes.
    pub fn max_out_degree(&self) -> usize {
        (0..self.n).map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// Check the degree constraint of a TopoOpt direct-connect fabric:
    /// every node has out-degree ≤ `d` and in-degree ≤ `d`.
    pub fn respects_degree(&self, d: usize) -> bool {
        (0..self.n).all(|v| self.out_degree(v) <= d && self.in_degree(v) <= d)
    }

    /// Adjacency matrix of total capacities (bps), `n x n`, row = src.
    pub fn capacity_matrix(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.n]; self.n];
        for (_, e) in self.edges() {
            m[e.src][e.dst] += e.capacity_bps;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::new(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(g.respects_degree(0));
    }

    #[test]
    fn add_edge_updates_adjacency_and_degree() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 100.0);
        g.add_edge(0, 2, 100.0);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.out_neighbors(0), vec![1, 2]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn parallel_edges_add_capacity_and_multiplicity() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 25.0e9);
        g.add_edge(0, 1, 25.0e9);
        assert_eq!(g.multiplicity(0, 1), 2);
        assert!((g.capacity_between(0, 1) - 50.0e9).abs() < 1e-3);
    }

    #[test]
    fn remove_edge_tombstones() {
        let mut g = Graph::new(2);
        let e = g.add_edge(0, 1, 1.0);
        assert_eq!(g.num_edges(), 1);
        g.remove_edge(e);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(0), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn bidi_edge_creates_two_edges() {
        let mut g = Graph::new(2);
        g.add_bidi_edge(0, 1, 1.0);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn strong_connectivity_of_ring() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5, 1.0);
        }
        assert!(g.is_strongly_connected());
        // A path is not strongly connected.
        let mut p = Graph::new(3);
        p.add_edge(0, 1, 1.0);
        p.add_edge(1, 2, 1.0);
        assert!(!p.is_strongly_connected());
    }

    #[test]
    fn union_edges_merges_graphs() {
        let mut a = Graph::new(3);
        a.add_edge(0, 1, 1.0);
        let mut b = Graph::new(3);
        b.add_edge(1, 2, 2.0);
        a.union_edges(&b);
        assert!(a.has_edge(0, 1));
        assert!(a.has_edge(1, 2));
        assert_eq!(a.num_edges(), 2);
    }

    #[test]
    fn reverse_flips_direction() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 3.0);
        let r = g.reverse();
        assert!(r.has_edge(1, 0));
        assert!(!r.has_edge(0, 1));
    }

    #[test]
    fn degree_constraint_check() {
        let mut g = Graph::new(4);
        for j in 1..4 {
            g.add_edge(0, j, 1.0);
        }
        assert!(g.respects_degree(3));
        assert!(!g.respects_degree(2));
    }

    #[test]
    fn capacity_matrix_sums_parallel_links() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 1, 15.0);
        let m = g.capacity_matrix();
        assert!((m[0][1] - 25.0).abs() < 1e-9);
        assert_eq!(m[1][0], 0.0);
    }

    #[test]
    #[should_panic]
    fn add_edge_rejects_out_of_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5, 1.0);
    }
}
