//! Maximum-weight matching on general (undirected) graphs.
//!
//! `TopologyFinder` (Algorithm 1, step 3) repeatedly computes a maximum
//! weight matching over the model-parallel demand matrix `T_MP` to decide
//! which server pairs get a direct fiber. The paper uses Edmonds' Blossom
//! algorithm; this module provides:
//!
//! * an **exact** solver (bitmask dynamic programming, `O(n^2 · 2^n)`) for
//!   instances up to [`EXACT_LIMIT`] nodes, and
//! * a **greedy + 2-opt local-improvement** solver for larger instances,
//!   which in practice lands within a few percent of optimal on the dense,
//!   heavy-tailed demand matrices produced by DNN parallelization strategies.
//!
//! [`MatchingAlgo::Auto`] picks the exact solver whenever it is affordable.
//! Property tests verify that the greedy+improve solver is never better than
//! (and usually close to) the exact one, and that all solvers return valid
//! matchings.

use serde::{Deserialize, Serialize};

/// Largest node count for which the exact bitmask solver is used by
/// [`MatchingAlgo::Auto`].
pub const EXACT_LIMIT: usize = 22;

/// Which matching algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchingAlgo {
    /// Exact bitmask DP; only valid for small `n` (≤ ~24).
    Exact,
    /// Greedy heaviest-edge-first, then 2-opt pair swaps until a local
    /// optimum is reached.
    GreedyImprove,
    /// Exact when `n <= EXACT_LIMIT`, otherwise greedy+improve.
    Auto,
}

/// A matching as a list of unordered node pairs `(a, b)` with `a < b`.
pub type Matching = Vec<(usize, usize)>;

/// Compute a maximum-weight matching on the complete undirected graph over
/// `n` nodes whose edge weights are `weight(i, j) + weight(j, i)` of the
/// symmetric closure of `weights` (an `n x n` matrix). Zero / negative weight
/// pairs are never matched.
///
/// One-shot convenience over [`MatchingRounds`]; callers that rematch the
/// same (evolving) matrix repeatedly — `TopologyFinder`'s `d_MP` rounds —
/// should hold a `MatchingRounds` instead, which symmetrizes once and
/// reuses its solver buffers across rounds.
pub fn maximum_weight_matching(weights: &[Vec<f64>], algo: MatchingAlgo) -> Matching {
    MatchingRounds::new(weights, algo).round()
}

/// Total weight of a matching: Σ over pairs of the undirected weight
/// `max(w(a,b), 0) + max(w(b,a), 0)`, computed directly from the listed
/// pairs (no O(n²) symmetrized matrix is materialised).
pub fn matching_weight(weights: &[Vec<f64>], matching: &Matching) -> f64 {
    matching.iter().map(|&(a, b)| weights[a][b].max(0.0) + weights[b][a].max(0.0)).sum()
}

/// Sentinel in the exact solver's choice table: "leave the low bit
/// unmatched" (node indices are < [`EXACT_LIMIT`], so `u8::MAX` is free).
const NO_PARTNER: u8 = u8::MAX;

/// Repeated maximum-weight matching over an evolving weight matrix.
///
/// `TopologyFinder` (Algorithm 1, lines 12–17) runs one matching per MP
/// degree, halving the demand of served pairs between rounds. The one-shot
/// [`maximum_weight_matching`] re-symmetrizes the full n×n matrix and — for
/// the exact solver — re-allocates two `2^n`-entry DP tables every round;
/// this type symmetrizes once at construction, mutates pair weights in
/// place through [`MatchingRounds::halve_pair`], and reuses the solver
/// buffers for every [`MatchingRounds::round`] call.
#[derive(Debug, Clone)]
pub struct MatchingRounds {
    algo: MatchingAlgo,
    sym: Vec<Vec<f64>>,
    /// Exact solver: best achievable weight per node subset.
    best: Vec<f64>,
    /// Exact solver: partner of the subset's lowest bit ([`NO_PARTNER`] if
    /// it stays unmatched) — `u8` keeps the table 24x smaller than the
    /// `Option<(usize, usize)>` layout it replaces (4 MiB vs 96 MiB at
    /// n = [`EXACT_LIMIT`]).
    choice: Vec<u8>,
    /// Greedy solver: positive-weight edge list, re-sorted per round.
    edges: Vec<(usize, usize, f64)>,
    /// Greedy solver: current partner per node.
    matched: Vec<Option<usize>>,
}

impl MatchingRounds {
    /// Symmetrize `weights` once and size the solver buffers. `Auto`
    /// resolves to the exact solver when `n <= EXACT_LIMIT`.
    pub fn new(weights: &[Vec<f64>], algo: MatchingAlgo) -> Self {
        let n = weights.len();
        let algo = match algo {
            MatchingAlgo::Auto => {
                if n <= EXACT_LIMIT {
                    MatchingAlgo::Exact
                } else {
                    MatchingAlgo::GreedyImprove
                }
            }
            a => a,
        };
        MatchingRounds {
            algo,
            sym: symmetrize(weights),
            best: Vec::new(),
            choice: Vec::new(),
            edges: Vec::new(),
            matched: Vec::new(),
        }
    }

    /// Maximum-weight matching over the current pair weights.
    pub fn round(&mut self) -> Matching {
        match self.algo {
            MatchingAlgo::Exact => exact_matching(&self.sym, &mut self.best, &mut self.choice),
            MatchingAlgo::GreedyImprove => {
                greedy_improve_matching(&self.sym, &mut self.edges, &mut self.matched)
            }
            MatchingAlgo::Auto => unreachable!("Auto is resolved in new()"),
        }
    }

    /// Halve the residual demand of pair `{a, b}` (Algorithm 1, line 17).
    /// Operates on the symmetrized weight, which equals halving both
    /// directed demands for the non-negative matrices `TopologyFinder`
    /// feeds in.
    pub fn halve_pair(&mut self, a: usize, b: usize) {
        self.sym[a][b] /= 2.0;
        self.sym[b][a] /= 2.0;
    }

    /// Current undirected weight of pair `{a, b}`.
    pub fn pair_weight(&self, a: usize, b: usize) -> f64 {
        self.sym[a][b]
    }
}

/// True if no node appears twice and every pair is distinct nodes.
pub fn is_valid_matching(n: usize, matching: &Matching) -> bool {
    let mut used = vec![false; n];
    for &(a, b) in matching {
        if a >= n || b >= n || a == b || used[a] || used[b] {
            return false;
        }
        used[a] = true;
        used[b] = true;
    }
    true
}

/// Undirected weight of pair {i, j} = max(w(i,j), 0) + max(w(j,i), 0).
fn symmetrize(weights: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = weights.len();
    let mut s = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s[i][j] = weights[i][j].max(0.0) + weights[j][i].max(0.0);
            }
        }
    }
    s
}

/// Bitmask-DP exact solver. `best` and `choice` are caller-owned buffers
/// (resized and overwritten here) so repeated rounds do not re-allocate the
/// `2^n`-entry tables.
fn exact_matching(sym: &[Vec<f64>], best: &mut Vec<f64>, choice: &mut Vec<u8>) -> Matching {
    let n = sym.len();
    assert!(
        n <= EXACT_LIMIT,
        "exact matching only supported for n <= {EXACT_LIMIT} (got {n}); \
         use MatchingAlgo::GreedyImprove or Auto"
    );
    if n == 0 {
        return Vec::new();
    }
    let full: u32 = (1u32 << n) - 1;
    // best[mask] = max total weight achievable matching only nodes in mask;
    // choice[mask] = the partner the mask's lowest bit takes in that
    // optimum (NO_PARTNER when it stays unmatched).
    best.clear();
    best.resize((full as usize) + 1, 0.0);
    choice.clear();
    choice.resize((full as usize) + 1, NO_PARTNER);
    for mask in 1..=full {
        let i = mask.trailing_zeros() as usize;
        // Option 1: leave i unmatched.
        let without_i = mask & !(1 << i);
        let mut b = best[without_i as usize];
        let mut c = NO_PARTNER;
        // Option 2: pair i with some j in mask.
        let mut rest = without_i;
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if sym[i][j] <= 0.0 {
                continue;
            }
            let m2 = without_i & !(1 << j);
            let cand = sym[i][j] + best[m2 as usize];
            if cand > b {
                b = cand;
                c = j as u8;
            }
        }
        best[mask as usize] = b;
        choice[mask as usize] = c;
    }
    // Reconstruct.
    let mut matching = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let i = mask.trailing_zeros() as usize;
        match choice[mask as usize] {
            NO_PARTNER => {
                mask &= !(1 << i);
            }
            j => {
                let j = j as usize;
                matching.push((i.min(j), i.max(j)));
                mask &= !(1 << i);
                mask &= !(1 << j);
            }
        }
    }
    matching.sort_unstable();
    matching
}

/// Greedy + 2-opt solver. `edges` and `matched` are caller-owned buffers
/// (cleared and refilled here) so repeated rounds do not re-allocate.
fn greedy_improve_matching(
    sym: &[Vec<f64>],
    edges: &mut Vec<(usize, usize, f64)>,
    matched: &mut Vec<Option<usize>>,
) -> Matching {
    let n = sym.len();
    // Greedy heaviest edge first.
    edges.clear();
    for (i, row) in sym.iter().enumerate() {
        for (j, &w) in row.iter().enumerate().skip(i + 1) {
            if w > 0.0 {
                edges.push((i, j, w));
            }
        }
    }
    edges.sort_by(|a, b| b.2.total_cmp(&a.2));
    matched.clear();
    matched.resize(n, None);
    for &(i, j, _) in edges.iter() {
        if matched[i].is_none() && matched[j].is_none() {
            matched[i] = Some(j);
            matched[j] = Some(i);
        }
    }
    // 2-opt improvement: for every pair of matched edges (a,b), (c,d), try
    // rewiring to (a,c),(b,d) or (a,d),(b,c); also try matching a currently
    // unmatched node by breaking an edge, if it raises total weight.
    let mut improved = true;
    let mut iterations = 0usize;
    while improved && iterations < 64 {
        improved = false;
        iterations += 1;
        let pairs: Vec<(usize, usize)> = current_pairs(matched);
        for x in 0..pairs.len() {
            for y in (x + 1)..pairs.len() {
                let (a, b) = pairs[x];
                let (c, d) = pairs[y];
                // Skip if any endpoint changed since snapshot.
                if matched[a] != Some(b) || matched[c] != Some(d) {
                    continue;
                }
                let cur = sym[a][b] + sym[c][d];
                let alt1 = sym[a][c] + sym[b][d];
                let alt2 = sym[a][d] + sym[b][c];
                if alt1 > cur && alt1 >= alt2 {
                    matched[a] = Some(c);
                    matched[c] = Some(a);
                    matched[b] = Some(d);
                    matched[d] = Some(b);
                    improved = true;
                } else if alt2 > cur {
                    matched[a] = Some(d);
                    matched[d] = Some(a);
                    matched[b] = Some(c);
                    matched[c] = Some(b);
                    improved = true;
                }
            }
        }
        // Augment with unmatched nodes: if u and v are both unmatched and
        // share positive weight, match them.
        for u in 0..n {
            if matched[u].is_some() {
                continue;
            }
            let mut best_v = None;
            let mut best_w = 0.0;
            for v in 0..n {
                if v != u && matched[v].is_none() && sym[u][v] > best_w {
                    best_w = sym[u][v];
                    best_v = Some(v);
                }
            }
            if let Some(v) = best_v {
                matched[u] = Some(v);
                matched[v] = Some(u);
                improved = true;
            }
        }
    }
    let mut out = current_pairs(matched);
    out.sort_unstable();
    out
}

fn current_pairs(matched: &[Option<usize>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, m) in matched.iter().enumerate() {
        if let Some(j) = *m {
            if i < j {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(n: usize, entries: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; n]; n];
        for &(i, j, v) in entries {
            m[i][j] = v;
        }
        m
    }

    #[test]
    fn exact_picks_two_light_edges_over_one_heavy() {
        // Heavy edge 0-1 of weight 10, but 0-2 (7) + 1-3 (7) = 14 is better.
        let m = w(4, &[(0, 1, 10.0), (0, 2, 7.0), (1, 3, 7.0)]);
        let matching = maximum_weight_matching(&m, MatchingAlgo::Exact);
        assert!(is_valid_matching(4, &matching));
        assert!((matching_weight(&m, &matching) - 14.0).abs() < 1e-9);
        assert!(matching.contains(&(0, 2)));
        assert!(matching.contains(&(1, 3)));
    }

    #[test]
    fn greedy_is_valid_and_auto_matches_exact_for_small_n() {
        let m = w(6, &[(0, 1, 5.0), (2, 3, 4.0), (4, 5, 3.0), (0, 5, 6.0)]);
        let auto = maximum_weight_matching(&m, MatchingAlgo::Auto);
        let exact = maximum_weight_matching(&m, MatchingAlgo::Exact);
        assert!(is_valid_matching(6, &auto));
        assert_eq!(matching_weight(&m, &auto), matching_weight(&m, &exact));
    }

    #[test]
    fn empty_and_zero_weight_graphs_yield_empty_matching() {
        let matching = maximum_weight_matching(&vec![vec![0.0; 5]; 5], MatchingAlgo::Auto);
        assert!(matching.is_empty());
        let matching = maximum_weight_matching(&Vec::new(), MatchingAlgo::Exact);
        assert!(matching.is_empty());
    }

    #[test]
    fn asymmetric_demands_are_summed() {
        // 3 -> 0 demand only, should still produce the (0,3) pair.
        let m = w(4, &[(3, 0, 9.0)]);
        let matching = maximum_weight_matching(&m, MatchingAlgo::Exact);
        assert_eq!(matching, vec![(0, 3)]);
        assert!((matching_weight(&m, &matching) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_improve_handles_larger_instances() {
        // 40-node cycle-ish weights.
        let n = 40;
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            m[i][(i + 1) % n] = 1.0 + (i % 5) as f64;
        }
        let matching = maximum_weight_matching(&m, MatchingAlgo::GreedyImprove);
        assert!(is_valid_matching(n, &matching));
        assert!(matching.len() <= n / 2);
        assert!(matching_weight(&m, &matching) > 0.0);
    }

    #[test]
    fn rounds_with_halving_match_per_round_resymmetrization() {
        // The buffer-reusing rounds API must reproduce the legacy loop that
        // halved the raw demand matrix and re-ran maximum_weight_matching.
        for n in [10usize, 30] {
            let mut raw = vec![vec![0.0; n]; n];
            for (i, row) in raw.iter_mut().enumerate() {
                for (j, w) in row.iter_mut().enumerate() {
                    if i != j {
                        *w = ((i * 31 + j * 17) % 23) as f64 * 1.0e8;
                    }
                }
            }
            let mut legacy_weights = raw.clone();
            let mut rounds = MatchingRounds::new(&raw, MatchingAlgo::Auto);
            for round in 0..4 {
                let legacy = maximum_weight_matching(&legacy_weights, MatchingAlgo::Auto);
                let fast = rounds.round();
                assert_eq!(legacy, fast, "n = {n}, round {round}");
                for &(a, b) in &legacy {
                    legacy_weights[a][b] /= 2.0;
                    legacy_weights[b][a] /= 2.0;
                    rounds.halve_pair(a, b);
                }
            }
        }
    }

    #[test]
    fn rounds_pair_weight_tracks_halving() {
        let m = w(4, &[(0, 1, 8.0), (1, 0, 4.0)]);
        let mut rounds = MatchingRounds::new(&m, MatchingAlgo::Exact);
        assert_eq!(rounds.pair_weight(0, 1), 12.0);
        rounds.halve_pair(0, 1);
        assert_eq!(rounds.pair_weight(0, 1), 6.0);
        assert_eq!(rounds.pair_weight(1, 0), 6.0);
    }

    #[test]
    fn matching_weight_clamps_negative_directed_entries() {
        // Direct pair-weight computation must match the symmetrized
        // definition max(w_ij, 0) + max(w_ji, 0).
        let mut m = w(4, &[(0, 1, 5.0), (2, 3, 7.0)]);
        m[1][0] = -3.0;
        let matching = vec![(0, 1), (2, 3)];
        assert!((matching_weight(&m, &matching) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn is_valid_matching_rejects_reuse() {
        assert!(!is_valid_matching(4, &vec![(0, 1), (1, 2)]));
        assert!(!is_valid_matching(4, &vec![(0, 0)]));
        assert!(!is_valid_matching(2, &vec![(0, 5)]));
        assert!(is_valid_matching(4, &vec![(0, 1), (2, 3)]));
    }

    proptest! {
        #[test]
        fn greedy_never_beats_exact_and_both_valid(
            weights in proptest::collection::vec(
                proptest::collection::vec(0.0f64..100.0, 8), 8)
        ) {
            let exact = maximum_weight_matching(&weights, MatchingAlgo::Exact);
            let greedy = maximum_weight_matching(&weights, MatchingAlgo::GreedyImprove);
            prop_assert!(is_valid_matching(8, &exact));
            prop_assert!(is_valid_matching(8, &greedy));
            let we = matching_weight(&weights, &exact);
            let wg = matching_weight(&weights, &greedy);
            prop_assert!(wg <= we + 1e-6, "greedy {wg} beat exact {we}");
            // Greedy + 2-opt should be within 30% of optimal on small dense instances.
            prop_assert!(wg >= 0.7 * we - 1e-6, "greedy {wg} far from exact {we}");
        }

        #[test]
        fn exact_matching_weight_is_at_least_best_single_edge(
            weights in proptest::collection::vec(
                proptest::collection::vec(0.0f64..50.0, 6), 6)
        ) {
            let exact = maximum_weight_matching(&weights, MatchingAlgo::Exact);
            let mut best_edge = 0.0f64;
            for (i, row) in weights.iter().enumerate() {
                for (j, &w) in row.iter().enumerate() {
                    if i != j {
                        best_edge = best_edge.max(w + weights[j][i]);
                    }
                }
            }
            prop_assert!(matching_weight(&weights, &exact) >= best_edge - 1e-6);
        }
    }
}
