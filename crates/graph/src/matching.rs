//! Maximum-weight matching on general (undirected) graphs.
//!
//! `TopologyFinder` (Algorithm 1, step 3) repeatedly computes a maximum
//! weight matching over the model-parallel demand matrix `T_MP` to decide
//! which server pairs get a direct fiber. The paper uses Edmonds' Blossom
//! algorithm; this module provides:
//!
//! * an **exact** solver (bitmask dynamic programming, `O(n^2 · 2^n)`) for
//!   instances up to [`EXACT_LIMIT`] nodes, and
//! * a **greedy + 2-opt local-improvement** solver for larger instances,
//!   which in practice lands within a few percent of optimal on the dense,
//!   heavy-tailed demand matrices produced by DNN parallelization strategies.
//!
//! [`MatchingAlgo::Auto`] picks the exact solver whenever it is affordable.
//! Property tests verify that the greedy+improve solver is never better than
//! (and usually close to) the exact one, and that all solvers return valid
//! matchings.

use serde::{Deserialize, Serialize};

/// Largest node count for which the exact bitmask solver is used by
/// [`MatchingAlgo::Auto`].
pub const EXACT_LIMIT: usize = 22;

/// Which matching algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchingAlgo {
    /// Exact bitmask DP; only valid for small `n` (≤ ~24).
    Exact,
    /// Greedy heaviest-edge-first, then 2-opt pair swaps until a local
    /// optimum is reached.
    GreedyImprove,
    /// Exact when `n <= EXACT_LIMIT`, otherwise greedy+improve.
    Auto,
}

/// A matching as a list of unordered node pairs `(a, b)` with `a < b`.
pub type Matching = Vec<(usize, usize)>;

/// Compute a maximum-weight matching on the complete undirected graph over
/// `n` nodes whose edge weights are `weight(i, j) + weight(j, i)` of the
/// symmetric closure of `weights` (an `n x n` matrix). Zero / negative weight
/// pairs are never matched.
pub fn maximum_weight_matching(weights: &[Vec<f64>], algo: MatchingAlgo) -> Matching {
    let n = weights.len();
    let sym = symmetrize(weights);
    let algo = match algo {
        MatchingAlgo::Auto => {
            if n <= EXACT_LIMIT {
                MatchingAlgo::Exact
            } else {
                MatchingAlgo::GreedyImprove
            }
        }
        a => a,
    };
    match algo {
        MatchingAlgo::Exact => exact_matching(&sym),
        MatchingAlgo::GreedyImprove => greedy_improve_matching(&sym),
        MatchingAlgo::Auto => unreachable!(),
    }
}

/// Total weight of a matching under a symmetric weight matrix.
pub fn matching_weight(weights: &[Vec<f64>], matching: &Matching) -> f64 {
    let sym = symmetrize(weights);
    matching.iter().map(|&(a, b)| sym[a][b]).sum()
}

/// True if no node appears twice and every pair is distinct nodes.
pub fn is_valid_matching(n: usize, matching: &Matching) -> bool {
    let mut used = vec![false; n];
    for &(a, b) in matching {
        if a >= n || b >= n || a == b || used[a] || used[b] {
            return false;
        }
        used[a] = true;
        used[b] = true;
    }
    true
}

/// Undirected weight of pair {i, j} = max(w(i,j), 0) + max(w(j,i), 0).
fn symmetrize(weights: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = weights.len();
    let mut s = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s[i][j] = weights[i][j].max(0.0) + weights[j][i].max(0.0);
            }
        }
    }
    s
}

fn exact_matching(sym: &[Vec<f64>]) -> Matching {
    let n = sym.len();
    assert!(n <= 26, "exact matching only supported for small n (got {n})");
    if n == 0 {
        return Vec::new();
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    // best[mask] = max total weight achievable matching only nodes in mask.
    let mut best = vec![0.0f64; (full as usize) + 1];
    let mut choice: Vec<Option<(usize, usize)>> = vec![None; (full as usize) + 1];
    for mask in 1..=full {
        let i = mask.trailing_zeros() as usize;
        // Option 1: leave i unmatched.
        let without_i = mask & !(1 << i);
        let mut b = best[without_i as usize];
        let mut c: Option<(usize, usize)> = None;
        // Option 2: pair i with some j in mask.
        let mut rest = without_i;
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if sym[i][j] <= 0.0 {
                continue;
            }
            let m2 = without_i & !(1 << j);
            let cand = sym[i][j] + best[m2 as usize];
            if cand > b {
                b = cand;
                c = Some((i, j));
            }
        }
        best[mask as usize] = b;
        choice[mask as usize] = c;
    }
    // Reconstruct.
    let mut matching = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let i = mask.trailing_zeros() as usize;
        match choice[mask as usize] {
            Some((a, b)) => {
                matching.push((a.min(b), a.max(b)));
                mask &= !(1 << a);
                mask &= !(1 << b);
            }
            None => {
                mask &= !(1 << i);
            }
        }
    }
    matching.sort_unstable();
    matching
}

fn greedy_improve_matching(sym: &[Vec<f64>]) -> Matching {
    let n = sym.len();
    // Greedy heaviest edge first.
    let mut edges: Vec<(usize, usize, f64)> = sym
        .iter()
        .enumerate()
        .flat_map(|(i, row)| {
            row.iter()
                .enumerate()
                .skip(i + 1)
                .filter(|&(_, &w)| w > 0.0)
                .map(move |(j, &w)| (i, j, w))
        })
        .collect();
    edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    let mut matched: Vec<Option<usize>> = vec![None; n];
    for &(i, j, _) in &edges {
        if matched[i].is_none() && matched[j].is_none() {
            matched[i] = Some(j);
            matched[j] = Some(i);
        }
    }
    // 2-opt improvement: for every pair of matched edges (a,b), (c,d), try
    // rewiring to (a,c),(b,d) or (a,d),(b,c); also try matching a currently
    // unmatched node by breaking an edge, if it raises total weight.
    let mut improved = true;
    let mut iterations = 0usize;
    while improved && iterations < 64 {
        improved = false;
        iterations += 1;
        let pairs: Vec<(usize, usize)> = current_pairs(&matched);
        for x in 0..pairs.len() {
            for y in (x + 1)..pairs.len() {
                let (a, b) = pairs[x];
                let (c, d) = pairs[y];
                // Skip if any endpoint changed since snapshot.
                if matched[a] != Some(b) || matched[c] != Some(d) {
                    continue;
                }
                let cur = sym[a][b] + sym[c][d];
                let alt1 = sym[a][c] + sym[b][d];
                let alt2 = sym[a][d] + sym[b][c];
                if alt1 > cur && alt1 >= alt2 {
                    matched[a] = Some(c);
                    matched[c] = Some(a);
                    matched[b] = Some(d);
                    matched[d] = Some(b);
                    improved = true;
                } else if alt2 > cur {
                    matched[a] = Some(d);
                    matched[d] = Some(a);
                    matched[b] = Some(c);
                    matched[c] = Some(b);
                    improved = true;
                }
            }
        }
        // Augment with unmatched nodes: if u and v are both unmatched and
        // share positive weight, match them.
        for u in 0..n {
            if matched[u].is_some() {
                continue;
            }
            let mut best_v = None;
            let mut best_w = 0.0;
            for v in 0..n {
                if v != u && matched[v].is_none() && sym[u][v] > best_w {
                    best_w = sym[u][v];
                    best_v = Some(v);
                }
            }
            if let Some(v) = best_v {
                matched[u] = Some(v);
                matched[v] = Some(u);
                improved = true;
            }
        }
    }
    let mut out = current_pairs(&matched);
    out.sort_unstable();
    out
}

fn current_pairs(matched: &[Option<usize>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, m) in matched.iter().enumerate() {
        if let Some(j) = *m {
            if i < j {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(n: usize, entries: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; n]; n];
        for &(i, j, v) in entries {
            m[i][j] = v;
        }
        m
    }

    #[test]
    fn exact_picks_two_light_edges_over_one_heavy() {
        // Heavy edge 0-1 of weight 10, but 0-2 (7) + 1-3 (7) = 14 is better.
        let m = w(4, &[(0, 1, 10.0), (0, 2, 7.0), (1, 3, 7.0)]);
        let matching = maximum_weight_matching(&m, MatchingAlgo::Exact);
        assert!(is_valid_matching(4, &matching));
        assert!((matching_weight(&m, &matching) - 14.0).abs() < 1e-9);
        assert!(matching.contains(&(0, 2)));
        assert!(matching.contains(&(1, 3)));
    }

    #[test]
    fn greedy_is_valid_and_auto_matches_exact_for_small_n() {
        let m = w(6, &[(0, 1, 5.0), (2, 3, 4.0), (4, 5, 3.0), (0, 5, 6.0)]);
        let auto = maximum_weight_matching(&m, MatchingAlgo::Auto);
        let exact = maximum_weight_matching(&m, MatchingAlgo::Exact);
        assert!(is_valid_matching(6, &auto));
        assert_eq!(matching_weight(&m, &auto), matching_weight(&m, &exact));
    }

    #[test]
    fn empty_and_zero_weight_graphs_yield_empty_matching() {
        let matching = maximum_weight_matching(&vec![vec![0.0; 5]; 5], MatchingAlgo::Auto);
        assert!(matching.is_empty());
        let matching = maximum_weight_matching(&Vec::new(), MatchingAlgo::Exact);
        assert!(matching.is_empty());
    }

    #[test]
    fn asymmetric_demands_are_summed() {
        // 3 -> 0 demand only, should still produce the (0,3) pair.
        let m = w(4, &[(3, 0, 9.0)]);
        let matching = maximum_weight_matching(&m, MatchingAlgo::Exact);
        assert_eq!(matching, vec![(0, 3)]);
        assert!((matching_weight(&m, &matching) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_improve_handles_larger_instances() {
        // 40-node cycle-ish weights.
        let n = 40;
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            m[i][(i + 1) % n] = 1.0 + (i % 5) as f64;
        }
        let matching = maximum_weight_matching(&m, MatchingAlgo::GreedyImprove);
        assert!(is_valid_matching(n, &matching));
        assert!(matching.len() <= n / 2);
        assert!(matching_weight(&m, &matching) > 0.0);
    }

    #[test]
    fn is_valid_matching_rejects_reuse() {
        assert!(!is_valid_matching(4, &vec![(0, 1), (1, 2)]));
        assert!(!is_valid_matching(4, &vec![(0, 0)]));
        assert!(!is_valid_matching(2, &vec![(0, 5)]));
        assert!(is_valid_matching(4, &vec![(0, 1), (2, 3)]));
    }

    proptest! {
        #[test]
        fn greedy_never_beats_exact_and_both_valid(
            weights in proptest::collection::vec(
                proptest::collection::vec(0.0f64..100.0, 8), 8)
        ) {
            let exact = maximum_weight_matching(&weights, MatchingAlgo::Exact);
            let greedy = maximum_weight_matching(&weights, MatchingAlgo::GreedyImprove);
            prop_assert!(is_valid_matching(8, &exact));
            prop_assert!(is_valid_matching(8, &greedy));
            let we = matching_weight(&weights, &exact);
            let wg = matching_weight(&weights, &greedy);
            prop_assert!(wg <= we + 1e-6, "greedy {wg} beat exact {we}");
            // Greedy + 2-opt should be within 30% of optimal on small dense instances.
            prop_assert!(wg >= 0.7 * we - 1e-6, "greedy {wg} far from exact {we}");
        }

        #[test]
        fn exact_matching_weight_is_at_least_best_single_edge(
            weights in proptest::collection::vec(
                proptest::collection::vec(0.0f64..50.0, 6), 6)
        ) {
            let exact = maximum_weight_matching(&weights, MatchingAlgo::Exact);
            let mut best_edge = 0.0f64;
            for (i, row) in weights.iter().enumerate() {
                for (j, &w) in row.iter().enumerate() {
                    if i != j {
                        best_edge = best_edge.max(w + weights[j][i]);
                    }
                }
            }
            prop_assert!(matching_weight(&weights, &exact) >= best_edge - 1e-6);
        }
    }
}
