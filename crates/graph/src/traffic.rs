//! Dense traffic matrices.
//!
//! A traffic matrix records the demand in bytes between every ordered pair of
//! nodes for one training iteration. The paper visualises these as heatmaps
//! (Figures 1, 4, 8, 9); the `TopologyFinder` consumes them as `T_AllReduce`
//! and `T_MP` inputs.

use serde::{Deserialize, Serialize};

/// Demand in bytes between every ordered pair of `n` nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `n x n` demand in bytes; `data[src * n + dst]`.
    data: Vec<f64>,
}

impl TrafficMatrix {
    /// All-zero matrix over `n` nodes.
    pub fn new(n: usize) -> Self {
        TrafficMatrix { n, data: vec![0.0; n * n] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Demand in bytes from `src` to `dst`.
    pub fn get(&self, src: usize, dst: usize) -> f64 {
        self.data[src * self.n + dst]
    }

    /// Set the demand from `src` to `dst`.
    pub fn set(&mut self, src: usize, dst: usize, bytes: f64) {
        self.data[src * self.n + dst] = bytes;
    }

    /// Add `bytes` of demand from `src` to `dst`.
    pub fn add(&mut self, src: usize, dst: usize, bytes: f64) {
        self.data[src * self.n + dst] += bytes;
    }

    /// Scale the demand between one pair by `factor`.
    pub fn scale_entry(&mut self, src: usize, dst: usize, factor: f64) {
        self.data[src * self.n + dst] *= factor;
    }

    /// Total bytes of demand in the matrix.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum single-pair demand in bytes.
    pub fn max_entry(&self) -> f64 {
        self.data.iter().cloned().fold(0.0, f64::max)
    }

    /// Number of ordered pairs with non-zero demand.
    pub fn nonzero_pairs(&self) -> usize {
        self.data.iter().filter(|&&d| d > 0.0).count()
    }

    /// Communication degree of a node: number of distinct destinations it
    /// sends to plus distinct sources it receives from is *not* what the
    /// paper means; the paper's "communication degree" is the number of
    /// distinct peers a node exchanges traffic with. That is what this
    /// returns.
    pub fn communication_degree(&self, node: usize) -> usize {
        (0..self.n)
            .filter(|&peer| {
                peer != node && (self.get(node, peer) > 0.0 || self.get(peer, node) > 0.0)
            })
            .count()
    }

    /// Element-wise sum of two matrices over the same node set.
    pub fn merged(&self, other: &TrafficMatrix) -> TrafficMatrix {
        assert_eq!(self.n, other.n);
        let mut out = self.clone();
        for i in 0..self.data.len() {
            out.data[i] += other.data[i];
        }
        out
    }

    /// All ordered `(src, dst, bytes)` entries with non-zero demand, sorted
    /// by descending demand.
    pub fn entries_desc(&self) -> Vec<(usize, usize, f64)> {
        let mut v: Vec<(usize, usize, f64)> = (0..self.n)
            .flat_map(|s| (0..self.n).map(move |d| (s, d)))
            .filter(|&(s, d)| self.get(s, d) > 0.0)
            .map(|(s, d)| (s, d, self.get(s, d)))
            .collect();
        v.sort_by(|a, b| b.2.total_cmp(&a.2));
        v
    }

    /// ASCII heatmap rendering: rows are sources, columns destinations; each
    /// cell is scaled to a 0–9 digit relative to the maximum entry. Useful
    /// for the figure-regeneration binaries.
    pub fn ascii_heatmap(&self) -> String {
        let max = self.max_entry();
        let mut s = String::new();
        for src in 0..self.n {
            for dst in 0..self.n {
                let v = self.get(src, dst);
                let c = if max <= 0.0 || v <= 0.0 {
                    '.'
                } else {
                    let level = ((v / max) * 9.0).ceil().min(9.0) as u32;
                    char::from_digit(level, 10).unwrap()
                };
                s.push(c);
                s.push(' ');
            }
            s.push('\n');
        }
        s
    }

    /// CSV rendering (bytes), rows are sources.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        for src in 0..self.n {
            let row: Vec<String> =
                (0..self.n).map(|dst| format!("{:.1}", self.get(src, dst))).collect();
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_totals_zero() {
        let m = TrafficMatrix::new(4);
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.nonzero_pairs(), 0);
    }

    #[test]
    fn get_set_add_roundtrip() {
        let mut m = TrafficMatrix::new(3);
        m.set(0, 1, 10.0);
        m.add(0, 1, 5.0);
        assert_eq!(m.get(0, 1), 15.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.total(), 15.0);
    }

    #[test]
    fn communication_degree_counts_distinct_peers() {
        let mut m = TrafficMatrix::new(4);
        m.set(0, 1, 1.0);
        m.set(2, 0, 1.0);
        m.set(0, 1, 2.0); // same peer again
        assert_eq!(m.communication_degree(0), 2);
        assert_eq!(m.communication_degree(3), 0);
    }

    #[test]
    fn merged_adds_elementwise() {
        let mut a = TrafficMatrix::new(2);
        a.set(0, 1, 1.0);
        let mut b = TrafficMatrix::new(2);
        b.set(0, 1, 2.0);
        b.set(1, 0, 3.0);
        let c = a.merged(&b);
        assert_eq!(c.get(0, 1), 3.0);
        assert_eq!(c.get(1, 0), 3.0);
    }

    #[test]
    fn entries_sorted_descending() {
        let mut m = TrafficMatrix::new(3);
        m.set(0, 1, 5.0);
        m.set(1, 2, 10.0);
        m.set(2, 0, 1.0);
        let e = m.entries_desc();
        assert_eq!(e[0], (1, 2, 10.0));
        assert_eq!(e[2], (2, 0, 1.0));
    }

    #[test]
    fn ascii_heatmap_marks_max_as_nine() {
        let mut m = TrafficMatrix::new(2);
        m.set(0, 1, 100.0);
        let art = m.ascii_heatmap();
        assert!(art.contains('9'));
        assert!(art.contains('.'));
    }

    #[test]
    fn max_entry_and_scale() {
        let mut m = TrafficMatrix::new(2);
        m.set(0, 1, 8.0);
        m.scale_entry(0, 1, 0.5);
        assert_eq!(m.max_entry(), 4.0);
    }
}
