//! Canonical interconnect builders.
//!
//! These correspond to the simulated network architectures of §5.1 of the
//! paper:
//!
//! * [`ideal_switch`] — a single non-blocking switch with `d·B` per server
//!   (the "Ideal Switch" baseline); modelled as a star through a virtual hub
//!   node with effectively infinite hub capacity.
//! * [`fat_tree`] / [`oversubscribed_fat_tree`] — k-ary fat-trees; the
//!   evaluation's "Fat-tree" baseline uses a full-bisection tree whose link
//!   bandwidth is chosen so the total cost matches TopoOpt (§5.2).
//! * [`expander`] — a Jellyfish-style random regular graph baseline.
//! * [`directed_ring`] / [`ring_permutation`] — +p regular rings used for
//!   AllReduce permutations (Figure 7).
//! * [`from_permutations`] — assemble a direct-connect TopoOpt topology from
//!   a set of ring permutations.
//! * [`torus_2d`] — classic accelerator interconnect, used in ablations.

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A fat-tree instance: the host-level graph plus bookkeeping about which
/// node indices are hosts vs. switches.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// The full graph: hosts `0..num_hosts`, then edge, aggregation, core
    /// switches.
    pub graph: Graph,
    /// Number of host (server) nodes.
    pub num_hosts: usize,
    /// Number of switch nodes (edge + aggregation + core).
    pub num_switches: usize,
    /// Fat-tree arity `k`.
    pub k: usize,
}

/// Star topology through a virtual hub: every server connects to node
/// `n` (the hub) with `per_server_bps` up and down. The hub is non-blocking
/// (its internal capacity never limits flows), which models the paper's Ideal
/// Switch.
pub fn ideal_switch(n: usize, per_server_bps: f64) -> Graph {
    let mut g = Graph::new(n + 1);
    let hub = n;
    for s in 0..n {
        g.add_edge(s, hub, per_server_bps);
        g.add_edge(hub, s, per_server_bps);
    }
    g
}

/// Node id of the hub created by [`ideal_switch`] for an `n`-server cluster.
pub fn ideal_switch_hub(n: usize) -> NodeId {
    n
}

/// Build a k-ary fat-tree with `k^3 / 4` hosts and full bisection bandwidth.
/// Every link has `link_bps` capacity. If `hosts_needed` is smaller than the
/// tree's natural host count, surplus hosts are simply left unused by callers
/// (they still exist in the graph).
pub fn fat_tree(k: usize, link_bps: f64) -> FatTree {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even and >= 2");
    let num_pods = k;
    let hosts_per_edge = k / 2;
    let edge_per_pod = k / 2;
    let agg_per_pod = k / 2;
    let num_core = (k / 2) * (k / 2);
    let num_hosts = num_pods * edge_per_pod * hosts_per_edge;
    let num_edge = num_pods * edge_per_pod;
    let num_agg = num_pods * agg_per_pod;
    let total = num_hosts + num_edge + num_agg + num_core;
    let mut g = Graph::new(total);

    let edge_base = num_hosts;
    let agg_base = num_hosts + num_edge;
    let core_base = num_hosts + num_edge + num_agg;

    // Hosts <-> edge switches.
    for pod in 0..num_pods {
        for e in 0..edge_per_pod {
            let edge_sw = edge_base + pod * edge_per_pod + e;
            for h in 0..hosts_per_edge {
                let host = pod * edge_per_pod * hosts_per_edge + e * hosts_per_edge + h;
                g.add_bidi_edge(host, edge_sw, link_bps);
            }
        }
    }
    // Edge <-> aggregation within each pod (complete bipartite).
    for pod in 0..num_pods {
        for e in 0..edge_per_pod {
            let edge_sw = edge_base + pod * edge_per_pod + e;
            for a in 0..agg_per_pod {
                let agg_sw = agg_base + pod * agg_per_pod + a;
                g.add_bidi_edge(edge_sw, agg_sw, link_bps);
            }
        }
    }
    // Aggregation <-> core. Aggregation switch `a` in each pod connects to
    // core group `a` (each group has k/2 core switches).
    for pod in 0..num_pods {
        for a in 0..agg_per_pod {
            let agg_sw = agg_base + pod * agg_per_pod + a;
            for c in 0..(k / 2) {
                let core_sw = core_base + a * (k / 2) + c;
                g.add_bidi_edge(agg_sw, core_sw, link_bps);
            }
        }
    }

    FatTree { graph: g, num_hosts, num_switches: num_edge + num_agg + num_core, k }
}

/// Smallest even `k` such that a k-ary fat-tree has at least `hosts` hosts.
pub fn fat_tree_arity_for_hosts(hosts: usize) -> usize {
    let mut k = 2;
    while k * k * k / 4 < hosts {
        k += 2;
    }
    k
}

/// A 2:1 oversubscribed fat-tree: identical to [`fat_tree`] except the
/// uplink (edge→aggregation and aggregation→core) capacity is halved. The
/// paper omits half of the ToR uplinks; in a flow-level model halving the
/// uplink capacity produces the same 2:1 oversubscription while keeping the
/// routing structure intact.
pub fn oversubscribed_fat_tree(k: usize, link_bps: f64) -> FatTree {
    let mut ft = fat_tree(k, link_bps);
    let num_hosts = ft.num_hosts;
    let halved: Vec<_> = ft
        .graph
        .edges()
        .filter(|(_, e)| e.src >= num_hosts && e.dst >= num_hosts)
        .map(|(id, _)| id)
        .collect();
    for id in halved {
        ft.graph.edge_mut(id).capacity_bps *= 0.5;
    }
    ft
}

/// Jellyfish-style random regular graph: every server gets `d` bidirectional
/// links of `link_bps` to distinct random peers. Uses a stub-matching
/// construction with retry, seeded for reproducibility.
pub fn expander(n: usize, d: usize, link_bps: f64, seed: u64) -> Graph {
    assert!(d < n, "degree must be smaller than node count");
    let mut rng = StdRng::seed_from_u64(seed);
    for _attempt in 0..200 {
        if let Some(g) = try_random_regular(n, d, link_bps, &mut rng) {
            return g;
        }
    }
    // Fall back to a deterministic circulant graph, which is also a good
    // expander for small degree.
    circulant(n, d, link_bps)
}

fn try_random_regular(n: usize, d: usize, link_bps: f64, rng: &mut StdRng) -> Option<Graph> {
    // Stub matching: each node has d stubs; shuffle and pair them up.
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    let mut adj = vec![vec![false; n]; n];
    let mut pairs = Vec::new();
    for chunk in stubs.chunks(2) {
        if chunk.len() < 2 {
            break;
        }
        let (a, b) = (chunk[0], chunk[1]);
        if a == b || adj[a][b] {
            return None; // self-loop or duplicate; retry
        }
        adj[a][b] = true;
        adj[b][a] = true;
        pairs.push((a, b));
    }
    let mut g = Graph::new(n);
    for (a, b) in pairs {
        g.add_bidi_edge(a, b, link_bps);
    }
    if g.is_strongly_connected() {
        Some(g)
    } else {
        None
    }
}

/// Deterministic circulant graph: node `i` connects to `i±1, i±2, …` until
/// degree `d` is used up. Always connected for `d >= 2`.
pub fn circulant(n: usize, d: usize, link_bps: f64) -> Graph {
    let mut g = Graph::new(n);
    let mut added = 0;
    let mut offset = 1;
    while added < d && offset <= n / 2 {
        let antipodal = offset * 2 == n;
        for i in 0..n {
            let j = (i + offset) % n;
            // Each undirected pair {i, i+offset} is generated once per i,
            // except at the antipodal offset where i and j generate the same
            // pair; add it only from the smaller endpoint then.
            if !antipodal || i < j {
                g.add_bidi_edge(i, j, link_bps);
            }
        }
        // Each offset consumes 2 degree per node (one to +offset, one to
        // -offset), except the antipodal offset which consumes 1.
        added += if antipodal { 1 } else { 2 };
        offset += 1;
    }
    g
}

/// Directed ring following the identity permutation: `i -> i+1 (mod n)`.
pub fn directed_ring(n: usize, link_bps: f64) -> Graph {
    ring_permutation(n, 1, link_bps)
}

/// The +p regular ring of Figure 7: a directed edge from `i` to
/// `(i + p) mod n` for every node. Only generates a single Hamiltonian ring
/// when `gcd(p, n) == 1`.
pub fn ring_permutation(n: usize, p: usize, link_bps: f64) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + p) % n, link_bps);
    }
    g
}

/// Assemble a direct-connect topology as the union of several +p ring
/// permutations (each adds out-degree 1 and in-degree 1 at every node).
pub fn from_permutations(n: usize, ps: &[usize], link_bps: f64) -> Graph {
    let mut g = Graph::new(n);
    for &p in ps {
        for i in 0..n {
            g.add_edge(i, (i + p) % n, link_bps);
        }
    }
    g
}

/// 2-D torus over a `rows x cols` grid with bidirectional links.
pub fn torus_2d(rows: usize, cols: usize, link_bps: f64) -> Graph {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let right = id(r, (c + 1) % cols);
            let down = id((r + 1) % rows, c);
            if cols > 1 {
                g.add_bidi_edge(id(r, c), right, link_bps);
            }
            if rows > 1 {
                g.add_bidi_edge(id(r, c), down, link_bps);
            }
        }
    }
    g
}

/// A uniform-random d-regular-ish directed graph used for stress tests:
/// each node picks `d` random distinct out-neighbours.
pub fn random_out_regular(n: usize, d: usize, link_bps: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        let mut targets: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        targets.shuffle(&mut rng);
        for &j in targets.iter().take(d.min(n - 1)) {
            g.add_edge(i, j, link_bps);
        }
        let _ = rng.gen::<u8>();
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{average_path_length, diameter};

    #[test]
    fn ideal_switch_is_two_hops_between_servers() {
        let g = ideal_switch(8, 100.0e9);
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(diameter(&g), Some(2));
        assert!(g.has_edge(0, 8));
        assert!(g.has_edge(8, 0));
    }

    #[test]
    fn fat_tree_k4_has_16_hosts_and_20_switches() {
        let ft = fat_tree(4, 10.0e9);
        assert_eq!(ft.num_hosts, 16);
        assert_eq!(ft.num_switches, 8 + 8 + 4);
        assert!(ft.graph.is_strongly_connected());
        // Host to host in another pod: host-edge-agg-core-agg-edge-host = 6 hops.
        assert_eq!(diameter(&ft.graph), Some(6));
    }

    #[test]
    fn fat_tree_arity_for_hosts_rounds_up() {
        assert_eq!(fat_tree_arity_for_hosts(16), 4);
        assert_eq!(fat_tree_arity_for_hosts(17), 6);
        assert_eq!(fat_tree_arity_for_hosts(128), 8);
        assert_eq!(fat_tree_arity_for_hosts(432), 12);
        assert_eq!(fat_tree_arity_for_hosts(2000), 20);
    }

    #[test]
    fn oversubscribed_fat_tree_halves_uplink_capacity_and_stays_connected() {
        let full = fat_tree(4, 1.0);
        let over = oversubscribed_fat_tree(4, 1.0);
        assert_eq!(over.graph.num_edges(), full.graph.num_edges());
        assert!(over.graph.total_capacity() < full.graph.total_capacity());
        assert!(over.graph.is_strongly_connected());
        // Host-facing links keep full capacity.
        assert!((over.graph.capacity_between(0, over.num_hosts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expander_is_connected_and_respects_degree() {
        let g = expander(32, 4, 25.0e9, 7);
        assert!(g.is_strongly_connected());
        assert!(g.respects_degree(4));
        // Expanders should have small average path length (≈ log_d n).
        assert!(average_path_length(&g) < 4.0);
    }

    #[test]
    fn circulant_fallback_connected() {
        let g = circulant(10, 4, 1.0);
        assert!(g.is_strongly_connected());
        assert!(g.respects_degree(4));
    }

    #[test]
    fn ring_permutation_plus_one_is_directed_cycle() {
        let g = ring_permutation(6, 1, 1.0);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(diameter(&g), Some(5));
        for i in 0..6 {
            assert!(g.has_edge(i, (i + 1) % 6));
        }
    }

    #[test]
    fn coprime_permutation_forms_single_cycle() {
        // +5 on 12 nodes: gcd(5,12)=1, so the walk visits every node.
        let g = ring_permutation(12, 5, 1.0);
        assert!(g.is_strongly_connected());
        // +4 on 12 nodes: gcd=4, graph splits into 4 cycles of length 3.
        let g2 = ring_permutation(12, 4, 1.0);
        assert!(!g2.is_strongly_connected());
    }

    #[test]
    fn from_permutations_unions_rings_and_cuts_diameter() {
        let single = from_permutations(16, &[1], 1.0);
        let multi = from_permutations(16, &[1, 3, 7], 1.0);
        assert_eq!(multi.max_out_degree(), 3);
        assert!(diameter(&multi).unwrap() < diameter(&single).unwrap());
    }

    #[test]
    fn torus_dimensions_and_connectivity() {
        let g = torus_2d(4, 4, 1.0);
        assert_eq!(g.num_nodes(), 16);
        assert!(g.is_strongly_connected());
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn expander_deterministic_for_same_seed() {
        let a = expander(20, 3, 1.0, 42);
        let b = expander(20, 3, 1.0, 42);
        assert_eq!(a.capacity_matrix(), b.capacity_matrix());
    }

    #[test]
    fn random_out_regular_has_requested_out_degree() {
        let g = random_out_regular(10, 3, 1.0, 1);
        for v in 0..10 {
            assert_eq!(g.out_degree(v), 3);
        }
    }
}
