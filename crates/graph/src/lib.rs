//! Graph substrate for the TopoOpt reproduction.
//!
//! This crate provides the graph machinery every other layer builds on:
//!
//! * [`Graph`] — a directed multigraph with per-edge capacities, used to
//!   represent physical interconnects (each node is a server or ToR switch,
//!   each edge a fiber / NIC interface).
//! * [`matching`] — maximum-weight matching on general graphs, used by
//!   `TopologyFinder` (Algorithm 1, step 3) to build the model-parallel
//!   sub-topology.
//! * [`paths`] — BFS / Dijkstra / k-shortest paths, diameter, and path-length
//!   CDFs (Figure 14 of the paper).
//! * [`topologies`] — canonical interconnect builders: Fat-tree,
//!   oversubscribed Fat-tree, Expander (Jellyfish-style random regular graph),
//!   ring, star (Ideal Switch), torus, and direct-connect graphs assembled
//!   from ring permutations.
//! * [`traffic`] — dense traffic matrices (demand in bytes between node
//!   pairs) with heatmap export helpers.

pub mod graph;
pub mod matching;
pub mod paths;
pub mod topologies;
pub mod traffic;

pub use graph::{EdgeId, Graph, NodeId};
pub use matching::{maximum_weight_matching, MatchingAlgo};
pub use paths::{
    all_pairs_shortest_path_lengths, bfs_shortest_path, diameter, dijkstra, k_shortest_paths,
    path_length_cdf,
};
pub use traffic::TrafficMatrix;
