//! Shortest paths, k-shortest paths, diameter, and path-length statistics.
//!
//! TopoOpt routes model-parallel transfers over (k-)shortest paths on the
//! combined topology (Algorithm 1, line 20), and Figure 14 of the paper
//! reports the CDF of hop counts between all server pairs, which is computed
//! with [`path_length_cdf`].

use crate::graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A path as an ordered list of nodes, starting at the source and ending at
/// the destination.
pub type NodePath = Vec<NodeId>;

/// BFS shortest path by hop count. Returns `None` if `dst` is unreachable.
pub fn bfs_shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<NodePath> {
    if src == dst {
        return Some(vec![src]);
    }
    let n = g.num_nodes();
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut q = VecDeque::new();
    seen[src] = true;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for v in g.out_neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                prev[v] = Some(u);
                if v == dst {
                    return Some(reconstruct(&prev, src, dst));
                }
                q.push_back(v);
            }
        }
    }
    None
}

fn reconstruct(prev: &[Option<NodeId>], src: NodeId, dst: NodeId) -> NodePath {
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur].expect("path reconstruction broke");
        path.push(cur);
    }
    path.reverse();
    path
}

/// Hop-count distances from `src` to every node (usize::MAX if unreachable).
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<usize> {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for v in g.out_neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

#[derive(Copy, Clone, PartialEq)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path where the per-edge cost is supplied by `edge_cost`
/// (e.g. `1.0 / capacity` to prefer fat links, or a constant for hop count).
/// Returns the path and its total cost, or `None` if unreachable.
pub fn dijkstra<F>(g: &Graph, src: NodeId, dst: NodeId, edge_cost: F) -> Option<(NodePath, f64)>
where
    F: Fn(NodeId, NodeId, f64) -> f64,
{
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapItem { cost: 0.0, node: src });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        if node == dst {
            break;
        }
        for (_, e) in g.out_edges(node) {
            let c = edge_cost(e.src, e.dst, e.capacity_bps);
            let next = cost + c;
            if next < dist[e.dst] {
                dist[e.dst] = next;
                prev[e.dst] = Some(node);
                heap.push(HeapItem { cost: next, node: e.dst });
            }
        }
    }
    if dist[dst].is_infinite() {
        None
    } else if src == dst {
        Some((vec![src], 0.0))
    } else {
        Some((reconstruct(&prev, src, dst), dist[dst]))
    }
}

/// Yen's algorithm: up to `k` loop-free shortest paths by hop count, in order
/// of increasing length.
pub fn k_shortest_paths(g: &Graph, src: NodeId, dst: NodeId, k: usize) -> Vec<NodePath> {
    let mut result: Vec<NodePath> = Vec::new();
    let first = match bfs_shortest_path(g, src, dst) {
        Some(p) => p,
        None => return result,
    };
    result.push(first);
    let mut candidates: Vec<NodePath> = Vec::new();

    while result.len() < k {
        let last = result.last().unwrap().clone();
        for i in 0..last.len().saturating_sub(1) {
            let spur_node = last[i];
            let root_path = &last[..=i];

            // Copy graph and remove edges that would recreate already-found
            // paths sharing this root, and nodes already on the root path.
            let mut gg = g.clone();
            for p in &result {
                if p.len() > i + 1 && &p[..=i] == root_path {
                    // remove edge p[i] -> p[i+1]
                    let ids: Vec<_> = gg
                        .out_edges(p[i])
                        .filter(|(_, e)| e.dst == p[i + 1])
                        .map(|(id, _)| id)
                        .collect();
                    for id in ids {
                        gg.remove_edge(id);
                    }
                }
            }
            for &node in &root_path[..root_path.len() - 1] {
                let ids: Vec<_> = gg
                    .out_edges(node)
                    .map(|(id, _)| id)
                    .chain(gg.in_edges(node).map(|(id, _)| id))
                    .collect();
                for id in ids {
                    gg.remove_edge(id);
                }
            }

            if let Some(spur_path) = bfs_shortest_path(&gg, spur_node, dst) {
                let mut total: NodePath = root_path[..root_path.len() - 1].to_vec();
                total.extend(spur_path);
                if !result.contains(&total) && !candidates.contains(&total) {
                    candidates.push(total);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by_key(|p| p.len());
        result.push(candidates.remove(0));
    }
    result
}

/// All-pairs shortest-path hop counts. `usize::MAX` marks unreachable pairs.
pub fn all_pairs_shortest_path_lengths(g: &Graph) -> Vec<Vec<usize>> {
    (0..g.num_nodes()).map(|s| bfs_distances(g, s)).collect()
}

/// Diameter in hops (maximum finite shortest-path length over all ordered
/// pairs). Returns `None` if the graph is disconnected.
pub fn diameter(g: &Graph) -> Option<usize> {
    let d = all_pairs_shortest_path_lengths(g);
    let mut max = 0;
    for (i, row) in d.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            if v == usize::MAX {
                return None;
            }
            max = max.max(v);
        }
    }
    Some(max)
}

/// Average shortest-path hop count over all ordered pairs (excluding
/// self-pairs). Unreachable pairs are skipped.
pub fn average_path_length(g: &Graph) -> f64 {
    let d = all_pairs_shortest_path_lengths(g);
    let mut sum = 0usize;
    let mut count = 0usize;
    for (i, row) in d.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j && v != usize::MAX {
                sum += v;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

/// Sorted hop counts over all reachable ordered pairs — the x-values of the
/// path-length CDF in Figure 14. Pair `i / len` with each value to plot the
/// CDF.
pub fn path_length_cdf(g: &Graph) -> Vec<usize> {
    let d = all_pairs_shortest_path_lengths(g);
    let mut v: Vec<usize> = Vec::new();
    for (i, row) in d.iter().enumerate() {
        for (j, &x) in row.iter().enumerate() {
            if i != j && x != usize::MAX {
                v.push(x);
            }
        }
    }
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 1.0);
        }
        g
    }

    #[test]
    fn bfs_on_ring_walks_around() {
        let g = ring(6);
        let p = bfs_shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        assert_eq!(bfs_shortest_path(&g, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        assert!(bfs_shortest_path(&g, 1, 0).is_none());
        assert!(bfs_shortest_path(&g, 0, 2).is_none());
    }

    #[test]
    fn dijkstra_prefers_cheaper_path() {
        // 0 -> 1 -> 2 with cheap edges, plus a direct expensive 0 -> 2.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 100.0);
        g.add_edge(1, 2, 100.0);
        g.add_edge(0, 2, 1.0);
        // Cost = 1 / capacity, so the two-hop path costs 0.02, direct 1.0.
        let (p, cost) = dijkstra(&g, 0, 2, |_, _, cap| 1.0 / cap).unwrap();
        assert_eq!(p, vec![0, 1, 2]);
        assert!(cost < 0.05);
    }

    #[test]
    fn dijkstra_hop_count_matches_bfs() {
        let g = ring(8);
        let (p, cost) = dijkstra(&g, 0, 5, |_, _, _| 1.0).unwrap();
        assert_eq!(p.len() - 1, 5);
        assert!((cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn diameter_of_directed_ring_is_n_minus_one() {
        let g = ring(7);
        assert_eq!(diameter(&g), Some(6));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn k_shortest_returns_increasing_lengths() {
        // Two disjoint paths 0->3: 0-1-3 and 0-2-3, plus longer 0-1-2-3.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(1, 2, 1.0);
        let ps = k_shortest_paths(&g, 0, 3, 3);
        assert!(ps.len() >= 2);
        assert_eq!(ps[0].len(), 3);
        assert!(ps.windows(2).all(|w| w[0].len() <= w[1].len()));
        // All start at 0 and end at 3, loop-free.
        for p in &ps {
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), 3);
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(q.len(), p.len(), "path has a loop: {:?}", p);
        }
    }

    #[test]
    fn average_path_length_of_full_mesh_is_one() {
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    g.add_edge(i, j, 1.0);
                }
            }
        }
        assert!((average_path_length(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_length_cdf_is_sorted_and_complete() {
        let g = ring(5);
        let cdf = path_length_cdf(&g);
        assert_eq!(cdf.len(), 5 * 4);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cdf.last().unwrap(), 4);
    }
}
