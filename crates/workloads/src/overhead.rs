//! Network-overhead scaling study (Figure 3).
//!
//! The paper measures, for six production DNNs, the percentage of each
//! training iteration spent on communication as the job grows from 8 to 128
//! GPUs; overhead reaches up to 60%. We reproduce the study by running the
//! strategy cost model on a fixed-bandwidth switched fabric and reporting
//! `comm / (comm + compute)`.

use topoopt_models::{build_model, ModelKind, ModelPreset};
use topoopt_strategy::{
    estimate_from_demands, extract_traffic, ComputeParams, ParallelizationStrategy, TopologyView,
};

/// Network overhead (% of iteration time spent communicating) for one model
/// on `num_gpus` GPUs connected through a switched fabric with
/// `per_server_bps` per server.
pub fn network_overhead_percent(
    kind: ModelKind,
    num_gpus: usize,
    gpus_per_server: usize,
    per_server_bps: f64,
) -> f64 {
    let model = build_model(kind, ModelPreset::Dedicated);
    let num_servers = (num_gpus / gpus_per_server).max(1);
    let strategy = if model.embedding_ops().is_empty() {
        ParallelizationStrategy::pure_data_parallel(&model, num_servers)
    } else {
        ParallelizationStrategy::hybrid_embeddings_round_robin(&model, num_servers)
    };
    let params = ComputeParams { gpus_per_server, ..ComputeParams::default() };
    let view = TopologyView::FullMesh { n: num_servers, per_server_bps };
    let demands = extract_traffic(&model, &strategy, gpus_per_server);
    let est = estimate_from_demands(&model, &strategy, &demands, &view, &params);
    // Figure 3 measures today's systems, which run flat NCCL rings spanning
    // every GPU: `gpus_per_server` concurrent ring streams share each server
    // NIC, and the ring has `k * gpus_per_server` members. TopoOpt's own
    // cost model (`topoopt_strategy::costmodel`) instead assumes
    // hierarchical server-level rings — reusing it here would understate
    // the motivation numbers by ~`gpus_per_server`x.
    let per_gpu_bps = (per_server_bps / gpus_per_server as f64).max(1.0);
    let mut allreduce_s = 0.0f64;
    for g in &demands.allreduce_groups {
        let k = (g.members.len() * gpus_per_server) as f64;
        if k <= 1.0 {
            continue;
        }
        allreduce_s += 2.0 * (k - 1.0) * (params.alpha_s + g.bytes * 8.0 / k / per_gpu_bps);
    }
    let comm = allreduce_s + est.mp_s;
    let total = est.compute_s + comm;
    if total <= 0.0 {
        0.0
    } else {
        100.0 * comm / total
    }
}

/// The Figure 3 sweep: overhead of all six models at 8–128 GPUs. Returns
/// `(model, gpu_count, overhead_percent)` rows.
pub fn overhead_scaling(per_server_bps: f64) -> Vec<(ModelKind, usize, f64)> {
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        for &gpus in &[8usize, 16, 32, 64, 128] {
            rows.push((kind, gpus, network_overhead_percent(kind, gpus, 4, per_server_bps)));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_gpu_count() {
        // Figure 3's headline: scaling out raises the communication share.
        for kind in [ModelKind::Vgg16, ModelKind::Candle, ModelKind::Bert] {
            let small = network_overhead_percent(kind, 8, 4, 100.0e9);
            let large = network_overhead_percent(kind, 128, 4, 100.0e9);
            assert!(
                large >= small,
                "{:?}: overhead at 128 GPUs ({large:.1}%) < at 8 GPUs ({small:.1}%)",
                kind
            );
        }
    }

    #[test]
    fn overhead_reaches_tens_of_percent_for_communication_heavy_models() {
        let v = network_overhead_percent(ModelKind::Vgg16, 128, 4, 100.0e9);
        assert!(v > 20.0, "VGG overhead at 128 GPUs = {v:.1}%");
        assert!(v <= 100.0);
    }

    #[test]
    fn resnet_overhead_is_modest() {
        let r = network_overhead_percent(ModelKind::ResNet50, 128, 4, 100.0e9);
        let v = network_overhead_percent(ModelKind::Vgg16, 128, 4, 100.0e9);
        assert!(r < v, "ResNet ({r:.1}%) should be less network-bound than VGG ({v:.1}%)");
    }

    #[test]
    fn sweep_produces_all_rows_in_valid_range() {
        let rows = overhead_scaling(100.0e9);
        assert_eq!(rows.len(), 6 * 5);
        for (_, _, pct) in rows {
            assert!((0.0..=100.0).contains(&pct));
        }
    }

    #[test]
    fn more_bandwidth_means_less_overhead() {
        let slow = network_overhead_percent(ModelKind::Candle, 64, 4, 25.0e9);
        let fast = network_overhead_percent(ModelKind::Candle, 64, 4, 400.0e9);
        assert!(fast < slow);
    }
}
