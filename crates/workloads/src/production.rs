//! Synthetic production job traces (Figure 2).
//!
//! The paper reports that most jobs at Meta run on 32–700 workers and last
//! more than 10 hours, with the top 10% exceeding 96 hours. We synthesise a
//! trace with those properties: per-category log-normal-ish distributions
//! over worker counts and durations, sampled deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Job categories shown in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobCategory {
    /// Object tracking models.
    ObjectTracking,
    /// Recommendation models (DLRM-class).
    Recommendation,
    /// Natural language processing.
    NaturalLanguage,
    /// Image recognition.
    ImageRecognition,
}

impl JobCategory {
    /// All categories.
    pub fn all() -> [JobCategory; 4] {
        [
            JobCategory::ObjectTracking,
            JobCategory::Recommendation,
            JobCategory::NaturalLanguage,
            JobCategory::ImageRecognition,
        ]
    }

    /// (median workers, spread) of the category's worker-count distribution.
    fn worker_profile(&self) -> (f64, f64) {
        match self {
            JobCategory::ObjectTracking => (24.0, 0.8),
            JobCategory::Recommendation => (128.0, 0.9),
            JobCategory::NaturalLanguage => (96.0, 1.0),
            JobCategory::ImageRecognition => (48.0, 0.9),
        }
    }

    /// (median hours, spread) of the category's duration distribution.
    fn duration_profile(&self) -> (f64, f64) {
        match self {
            JobCategory::ObjectTracking => (14.0, 1.1),
            JobCategory::Recommendation => (30.0, 1.2),
            JobCategory::NaturalLanguage => (24.0, 1.2),
            JobCategory::ImageRecognition => (12.0, 1.0),
        }
    }
}

/// One synthetic production training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductionJob {
    /// Category.
    pub category: JobCategory,
    /// Number of workers (GPUs).
    pub workers: usize,
    /// Training duration in hours.
    pub duration_hours: f64,
}

/// Sample `count` jobs per category, deterministically from `seed`.
pub fn sample_production_jobs(count: usize, seed: u64) -> Vec<ProductionJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::with_capacity(count * 4);
    for cat in JobCategory::all() {
        let (w_med, w_spread) = cat.worker_profile();
        let (d_med, d_spread) = cat.duration_profile();
        for _ in 0..count {
            let workers = lognormal(&mut rng, w_med, w_spread).round().clamp(1.0, 700.0) as usize;
            let duration = lognormal(&mut rng, d_med, d_spread).clamp(0.02, 1000.0);
            jobs.push(ProductionJob { category: cat, workers, duration_hours: duration });
        }
    }
    jobs
}

/// Log-normal sample with the given median and log-space spread, built from
/// a Box-Muller normal draw so we only need `rand`.
fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Empirical CDF points `(value, cumulative_fraction)` of a metric over a
/// job list.
pub fn cdf_points<F: Fn(&ProductionJob) -> f64>(
    jobs: &[ProductionJob],
    metric: F,
) -> Vec<(f64, f64)> {
    let mut values: Vec<f64> = jobs.iter().map(metric).collect();
    values.sort_by(f64::total_cmp);
    let n = values.len().max(1) as f64;
    values.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let a = sample_production_jobs(50, 3);
        let b = sample_production_jobs(50, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn worker_counts_match_reported_range() {
        let jobs = sample_production_jobs(500, 1);
        // Figure 2a: "most jobs are distributed across 32 to 700 workers".
        let in_range = jobs.iter().filter(|j| j.workers >= 16 && j.workers <= 700).count();
        assert!(in_range as f64 / jobs.len() as f64 > 0.6);
        assert!(jobs.iter().all(|j| j.workers >= 1 && j.workers <= 700));
    }

    #[test]
    fn durations_are_long_lasting() {
        let jobs = sample_production_jobs(500, 2);
        // Figure 2b: most jobs last over 10 hours; the top 10% exceed 96 h.
        let over_10h = jobs.iter().filter(|j| j.duration_hours > 10.0).count() as f64;
        assert!(over_10h / jobs.len() as f64 > 0.5, "only {over_10h} of 2000 exceed 10h");
        let cdf = cdf_points(&jobs, |j| j.duration_hours);
        let p90 = cdf[(cdf.len() as f64 * 0.9) as usize].0;
        assert!(p90 > 48.0, "p90 duration = {p90}h");
    }

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let jobs = sample_production_jobs(100, 5);
        let cdf = cdf_points(&jobs, |j| j.workers as f64);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn recommendation_jobs_use_more_workers_than_tracking() {
        let jobs = sample_production_jobs(400, 9);
        let avg = |cat: JobCategory| {
            let v: Vec<f64> =
                jobs.iter().filter(|j| j.category == cat).map(|j| j.workers as f64).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(JobCategory::Recommendation) > avg(JobCategory::ObjectTracking));
    }
}
