//! Workload generation and measurement-style studies.
//!
//! The paper's §2.2 motivates TopoOpt with measurements from Meta's
//! production clusters. Those traces are proprietary, so this crate
//! synthesises workloads with the same reported shape and regenerates the
//! motivation figures:
//!
//! * [`production`] — worker-count and job-duration distributions
//!   (Figure 2).
//! * [`overhead`] — network-overhead scaling with GPU count (Figure 3).
//! * [`heatmaps`] — traffic heatmaps: DLRM data-parallel vs hybrid
//!   (Figure 1), production-style jobs (Figure 4), ring permutations and the
//!   combined TopoOpt matrix (Figures 8 and 9).
//! * [`tta`] — the time-to-accuracy model behind Figure 20.

pub mod heatmaps;
pub mod overhead;
pub mod production;
pub mod tta;

pub use heatmaps::{
    dlrm_hybrid_heatmap, dlrm_pure_dp_heatmap, production_style_heatmap, topoopt_combined_heatmap,
};
pub use overhead::{network_overhead_percent, overhead_scaling};
pub use production::{sample_production_jobs, JobCategory, ProductionJob};
pub use tta::{time_to_accuracy, AccuracyCurve};
