//! Time-to-accuracy model (Figure 20).
//!
//! The testbed experiment trains VGG19 on ImageNet and reports top-5
//! accuracy against wall-clock time for three fabrics. Training throughput
//! differs per fabric; the accuracy-versus-epoch curve does not (the same
//! SGD trajectory is followed), so time-to-accuracy is the accuracy curve
//! composed with each fabric's epoch time.

use serde::{Deserialize, Serialize};

/// A saturating accuracy-vs-epoch curve `acc(e) = max · (1 - exp(-e/τ))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyCurve {
    /// Asymptotic accuracy (e.g. 0.92 top-5 for VGG19/ImageNet).
    pub max_accuracy: f64,
    /// Epoch constant τ controlling how fast the curve saturates.
    pub tau_epochs: f64,
}

impl AccuracyCurve {
    /// The VGG19 / ImageNet top-5 curve used for Figure 20 (saturates above
    /// 90% within a few tens of epochs).
    pub fn vgg19_imagenet() -> Self {
        AccuracyCurve { max_accuracy: 0.93, tau_epochs: 12.0 }
    }

    /// Accuracy after `epochs` epochs.
    pub fn accuracy_at(&self, epochs: f64) -> f64 {
        self.max_accuracy * (1.0 - (-epochs / self.tau_epochs).exp())
    }

    /// Epochs needed to reach `target` accuracy (`None` if unreachable).
    pub fn epochs_to_accuracy(&self, target: f64) -> Option<f64> {
        if target >= self.max_accuracy {
            return None;
        }
        Some(-self.tau_epochs * (1.0 - target / self.max_accuracy).ln())
    }
}

/// Wall-clock hours to reach `target` accuracy given the fabric's training
/// throughput in samples/second and the dataset size in samples per epoch.
pub fn time_to_accuracy(
    curve: &AccuracyCurve,
    target: f64,
    samples_per_second: f64,
    samples_per_epoch: f64,
) -> Option<f64> {
    let epochs = curve.epochs_to_accuracy(target)?;
    let seconds = epochs * samples_per_epoch / samples_per_second;
    Some(seconds / 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_curve_saturates() {
        let c = AccuracyCurve::vgg19_imagenet();
        assert!(c.accuracy_at(0.0) < 1e-12);
        assert!(c.accuracy_at(5.0) < c.accuracy_at(20.0));
        assert!(c.accuracy_at(200.0) < c.max_accuracy + 1e-9);
        assert!(c.accuracy_at(200.0) > 0.92);
    }

    #[test]
    fn epochs_to_target_inverts_the_curve() {
        let c = AccuracyCurve::vgg19_imagenet();
        let e = c.epochs_to_accuracy(0.90).unwrap();
        assert!((c.accuracy_at(e) - 0.90).abs() < 1e-9);
        assert!(c.epochs_to_accuracy(0.99).is_none());
    }

    #[test]
    fn faster_fabric_reaches_target_sooner_proportionally() {
        // Figure 20: TopoOpt (4x25G) reaches 90% top-5 ~2x faster than the
        // 25G switch baseline because its throughput is ~2x higher.
        let c = AccuracyCurve::vgg19_imagenet();
        let slow = time_to_accuracy(&c, 0.90, 400.0, 1.28e6).unwrap();
        let fast = time_to_accuracy(&c, 0.90, 800.0, 1.28e6).unwrap();
        assert!((slow / fast - 2.0).abs() < 1e-9);
        assert!(fast > 0.0);
    }
}
