//! Traffic heatmap generation (Figures 1, 4, 8 and 9).

use topoopt_collectives::ring::{multi_ring_traffic, ring_allreduce_traffic, RingPermutation};
use topoopt_graph::TrafficMatrix;
use topoopt_models::zoo::build_dlrm;
use topoopt_models::DlrmConfig;
use topoopt_strategy::{extract_traffic, ParallelizationStrategy};

/// Figure 1a: the §2.1 DLRM under pure data parallelism on `n` servers —
/// a single ring-AllReduce of the whole model.
pub fn dlrm_pure_dp_heatmap(n: usize) -> TrafficMatrix {
    let model = build_dlrm(&DlrmConfig::motivating_example());
    let strategy = ParallelizationStrategy::pure_data_parallel(&model, n);
    let demands = extract_traffic(&model, &strategy, 1);
    let mut tm = demands.mp.clone();
    for g in &demands.allreduce_groups {
        let perm = RingPermutation::new(g.members.clone(), 1);
        tm = tm.merged(&ring_allreduce_traffic(n, g.bytes, &perm));
    }
    tm
}

/// Figure 1b / 8: the same DLRM under the Meta hybrid placement, with the
/// AllReduce laid on the +`stride` ring permutation.
pub fn dlrm_hybrid_heatmap(n: usize, stride: usize) -> TrafficMatrix {
    let model = build_dlrm(&DlrmConfig::motivating_example());
    let strategy = ParallelizationStrategy::meta_dlrm_example(&model, n);
    let demands = extract_traffic(&model, &strategy, 1);
    let mut tm = demands.mp.clone();
    for g in &demands.allreduce_groups {
        let perm = RingPermutation::new(g.members.clone(), stride);
        tm = tm.merged(&ring_allreduce_traffic(n, g.bytes, &perm));
    }
    tm
}

/// Figure 9b: the hybrid DLRM with its AllReduce load-balanced over several
/// ring permutations simultaneously (TopoOpt's TotientPerms layout).
pub fn topoopt_combined_heatmap(n: usize, strides: &[usize]) -> TrafficMatrix {
    let model = build_dlrm(&DlrmConfig::motivating_example());
    let strategy = ParallelizationStrategy::meta_dlrm_example(&model, n);
    let demands = extract_traffic(&model, &strategy, 1);
    let mut tm = demands.mp.clone();
    for g in &demands.allreduce_groups {
        let perms: Vec<RingPermutation> =
            strides.iter().map(|&s| RingPermutation::new(g.members.clone(), s)).collect();
        tm = tm.merged(&multi_ring_traffic(n, g.bytes, &perms));
    }
    tm
}

/// Figure 4: a production-style heatmap — a dominant ring diagonal (the
/// AllReduce collective) plus a few model-dependent rows/columns of MP
/// traffic from servers hosting model-parallel operators.
pub fn production_style_heatmap(
    n: usize,
    mp_hosts: &[usize],
    ring_gb: f64,
    mp_gb: f64,
) -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(n);
    let perm = RingPermutation::new((0..n).collect(), 1);
    tm = tm.merged(&ring_allreduce_traffic(n, ring_gb * 1.0e9, &perm));
    for &h in mp_hosts {
        for peer in 0..n {
            if peer != h {
                tm.add(h, peer, mp_gb * 1.0e9 / n as f64);
                tm.add(peer, h, mp_gb * 1.0e9 / n as f64);
            }
        }
    }
    tm
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1.0e9;

    #[test]
    fn pure_dp_heatmap_matches_figure1a_scale() {
        // Figure 1a: ~44 GB of AllReduce transfers per server pair on the
        // ring (2x the 22 GB model); our ring model gives ~2 * 22 * 15/16.
        let tm = dlrm_pure_dp_heatmap(16);
        let max = tm.max_entry() / GB;
        assert!(max > 35.0 && max < 50.0, "max entry = {max} GB");
        // Only the ring diagonal is populated.
        assert_eq!(tm.nonzero_pairs(), 16);
    }

    #[test]
    fn hybrid_heatmap_shrinks_max_transfer() {
        // Figure 1b: the hybrid strategy reduces the maximum transfer from
        // ~44 GB to the ~single-GB range.
        let dp = dlrm_pure_dp_heatmap(16);
        let hybrid = dlrm_hybrid_heatmap(16, 1);
        assert!(hybrid.max_entry() < dp.max_entry() / 5.0);
        // MP rows make the hybrid heatmap denser than the pure ring.
        assert!(hybrid.nonzero_pairs() > dp.nonzero_pairs());
    }

    #[test]
    fn permuting_the_ring_moves_allreduce_but_not_mp() {
        // Figure 8: the ring diagonal moves with the permutation, the MP
        // rows/columns stay put.
        let h1 = dlrm_hybrid_heatmap(16, 1);
        let h3 = dlrm_hybrid_heatmap(16, 3);
        assert!((h1.total() - h3.total()).abs() / h1.total() < 1e-9);
        // Ring edge (0 -> 1) exists under +1 but not under +3.
        assert!(h1.get(0, 1) > h3.get(0, 1));
        assert!(h3.get(0, 3) > h1.get(0, 3) * 0.99);
        // MP traffic from table host 0 to a non-adjacent server is identical.
        assert!((h1.get(0, 5) - h3.get(0, 5)).abs() < 1.0);
    }

    #[test]
    fn combined_heatmap_is_more_balanced() {
        // Figure 9: overlapping the three permutations spreads the AllReduce
        // bytes, lowering the maximum entry versus a single ring.
        let single = dlrm_hybrid_heatmap(16, 1);
        let combined = topoopt_combined_heatmap(16, &[1, 3, 7]);
        assert!(combined.max_entry() < single.max_entry());
        assert!((combined.total() - single.total()).abs() / single.total() < 1e-9);
    }

    #[test]
    fn production_heatmap_has_ring_and_mp_structure() {
        let tm = production_style_heatmap(48, &[0, 11], 2.0, 0.5);
        // Ring diagonal present.
        assert!(tm.get(5, 6) > 0.0);
        // MP host talks to everyone.
        assert_eq!(tm.communication_degree(11), 47);
        // A plain server only talks to its ring neighbours and the MP hosts.
        assert_eq!(tm.communication_degree(20), 4);
    }
}
