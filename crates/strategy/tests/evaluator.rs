//! Equivalence property test: the incremental [`CostEvaluator`] must track
//! the full [`estimate_iteration_time`] estimator over arbitrary mutation
//! sequences, including reverts, on both full-mesh and concrete-topology
//! views (reachable and partially-disconnected).

use proptest::prelude::*;
use topoopt_models::zoo::build_dlrm;
use topoopt_models::DlrmConfig;
use topoopt_strategy::{
    estimate_iteration_time, ComputeParams, CostEvaluator, IterationEstimate,
    ParallelizationStrategy, PlacementKind, TopologyView,
};

const N: usize = 12;

fn close(a: f64, b: f64) -> bool {
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn assert_estimates_close(fast: &IterationEstimate, full: &IterationEstimate, step: usize) {
    assert!(close(fast.compute_s, full.compute_s), "step {step}: compute {fast:?} vs {full:?}");
    assert!(
        close(fast.allreduce_s, full.allreduce_s),
        "step {step}: allreduce {fast:?} vs {full:?}"
    );
    assert!(close(fast.mp_s, full.mp_s), "step {step}: mp {fast:?} vs {full:?}");
    assert!(close(fast.total_s, full.total_s), "step {step}: total {fast:?} vs {full:?}");
}

/// Decode one `(op_pick, kind_pick, server_pick)` sample into a placement
/// mutation; covers every [`PlacementKind`] variant.
fn decode_mutation(model_ops: usize, sample: (usize, usize, usize)) -> (usize, PlacementKind) {
    let (op_pick, kind_pick, server_pick) = sample;
    let op = op_pick % model_ops;
    let kind = match kind_pick % 4 {
        0 => PlacementKind::Replicated,
        1 => PlacementKind::Single(server_pick % N),
        2 => {
            let size = 2 + server_pick % 3;
            PlacementKind::Sharded((0..size).map(|i| (server_pick + i) % N).collect())
        }
        _ => PlacementKind::Single((server_pick + 7) % N),
    };
    (op, kind)
}

/// A partially-connected 12-server view: a chain covering servers 0..10,
/// servers 10 and 11 isolated, so mutations routinely cross the
/// reachable/unreachable boundary.
fn chain_view() -> TopologyView {
    let mut g = topoopt_graph::Graph::new(N);
    for i in 0..9 {
        g.add_bidi_edge(i, i + 1, 50.0e9);
    }
    TopologyView::from_graph(&g, N)
}

fn run_sequence(view: &TopologyView, muts: &[(usize, usize, usize)]) {
    let model = build_dlrm(&DlrmConfig::shared());
    let params = ComputeParams::default();
    let initial = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, N);
    let mut ev = CostEvaluator::new(&model, initial, view, &params);
    let mut undo: Vec<(usize, PlacementKind)> = Vec::new();
    for (step, &sample) in muts.iter().enumerate() {
        let (op, kind) = decode_mutation(model.num_ops(), sample);
        let old = ev.set_placement(op, kind);
        undo.push((op, old));
        let fast = ev.estimate();
        let full = estimate_iteration_time(&model, ev.strategy(), view, &params);
        assert_estimates_close(&fast, &full, step);
    }
    // Unwind every mutation; the evaluator must stay equivalent on the way
    // back down too (exercises the remove/deactivate paths).
    for (step, (op, old)) in undo.into_iter().enumerate().rev() {
        ev.set_placement(op, old);
        let fast = ev.estimate();
        let full = estimate_iteration_time(&model, ev.strategy(), view, &params);
        assert_estimates_close(&fast, &full, step);
    }
}

proptest! {
    #[test]
    fn incremental_matches_full_on_full_mesh(
        muts in proptest::collection::vec((0..10_000usize, 0..4usize, 0..1_000usize), 0..24)
    ) {
        let view = TopologyView::FullMesh { n: N, per_server_bps: 40.0e9 };
        run_sequence(&view, &muts);
    }

    #[test]
    fn incremental_matches_full_on_partially_connected_topology(
        muts in proptest::collection::vec((0..10_000usize, 0..4usize, 0..1_000usize), 0..24)
    ) {
        run_sequence(&chain_view(), &muts);
    }
}
