//! Topology-aware analytical iteration-time estimation (the FlexNet cost
//! model).
//!
//! The MCMC strategy search evaluates thousands of candidate strategies, so
//! this estimator is deliberately coarse: per-server compute from a roofline
//! model, AllReduce from the α-β ring model over the bandwidth the topology
//! actually provides, and model-parallel time from per-server egress/ingress
//! bottlenecks with a hop-count (bandwidth-tax) multiplier. The flow-level
//! simulator (`topoopt-netsim`) refines the winning strategy afterwards.

use crate::placement::{ParallelizationStrategy, PlacementKind};
use crate::traffic::{extract_traffic, TrafficDemands};
use serde::{Deserialize, Serialize};
use topoopt_graph::paths::bfs_distances;
use topoopt_graph::Graph;
use topoopt_models::DnnModel;

/// Compute-side parameters of the roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeParams {
    /// Peak FLOP/s of one GPU (fp32 A100 ≈ 19.5 TFLOP/s).
    pub gpu_flops: f64,
    /// GPUs per server (4 in the paper's simulations).
    pub gpus_per_server: usize,
    /// Achieved fraction of peak (covers kernel-launch and memory-bound
    /// layers).
    pub efficiency: f64,
    /// Per-transfer latency in seconds (link propagation + stack).
    pub alpha_s: f64,
}

impl Default for ComputeParams {
    fn default() -> Self {
        ComputeParams { gpu_flops: 19.5e12, gpus_per_server: 4, efficiency: 0.35, alpha_s: 10.0e-6 }
    }
}

impl ComputeParams {
    /// Effective FLOP/s of one server.
    pub fn server_flops(&self) -> f64 {
        self.gpu_flops * self.gpus_per_server as f64 * self.efficiency
    }
}

/// The network the cost model evaluates a strategy against.
#[derive(Debug, Clone)]
pub enum TopologyView {
    /// FlexFlow's default assumption: every server pair has a dedicated
    /// `per_pair_bps` link (distance 1). Also used for the Ideal Switch.
    FullMesh {
        /// Number of servers.
        n: usize,
        /// Per-server NIC bandwidth (bits per second).
        per_server_bps: f64,
    },
    /// A concrete direct-connect or switched topology. Servers are nodes
    /// `0..num_servers`; additional nodes (switches) may exist.
    Topology {
        /// Hop distance between every server pair.
        hops: Vec<Vec<usize>>,
        /// Bottleneck capacity (bps) along one shortest path per pair.
        bottleneck: Vec<Vec<f64>>,
        /// Total NIC capacity per server.
        server_bps: Vec<f64>,
        /// Total network capacity (sum of server NIC capacity).
        total_bps: f64,
        /// Number of servers.
        num_servers: usize,
        /// Optional per-pair throughput multipliers (`pair_factor[src][dst]`
        /// in `[0, 1]`), the RDMA forwarding plane's
        /// `effective_throughput_factor`: a relayed pair cannot exceed its
        /// factor times the path bottleneck, and a factor of 0 marks the
        /// pair as having no logical connection. `None` = relaying is free.
        pair_factor: Option<Vec<Vec<f64>>>,
    },
}

impl TopologyView {
    /// Build a view of a concrete topology graph whose first `num_servers`
    /// nodes are the servers.
    pub fn from_graph(g: &Graph, num_servers: usize) -> Self {
        let mut hops = Vec::with_capacity(num_servers);
        let mut bottleneck = Vec::with_capacity(num_servers);
        for s in 0..num_servers {
            let dist = bfs_distances(g, s);
            // Reconstruct bottlenecks with a second BFS pass per source:
            // bottleneck[dst] = max over parents p with dist[p]+1 = dist[dst]
            // of min(bottleneck[p], capacity(p, dst)).
            let mut bn = vec![0.0f64; g.num_nodes()];
            bn[s] = f64::INFINITY;
            let mut order: Vec<usize> =
                (0..g.num_nodes()).filter(|&v| dist[v] != usize::MAX).collect();
            order.sort_by_key(|&v| dist[v]);
            for &v in &order {
                if v == s {
                    continue;
                }
                for u in g.in_neighbors(v) {
                    if dist[u] != usize::MAX && dist[u] + 1 == dist[v] {
                        let cap = g.capacity_between(u, v);
                        let cand = bn[u].min(cap);
                        if cand > bn[v] {
                            bn[v] = cand;
                        }
                    }
                }
            }
            hops.push(dist.iter().take(num_servers).cloned().collect());
            bottleneck.push(bn.iter().take(num_servers).cloned().collect());
        }
        let server_bps: Vec<f64> = (0..num_servers).map(|s| g.total_out_capacity(s)).collect();
        let total_bps = server_bps.iter().sum();
        TopologyView::Topology {
            hops,
            bottleneck,
            server_bps,
            total_bps,
            num_servers,
            pair_factor: None,
        }
    }

    /// Attach per-pair throughput factors (the RDMA forwarding plane's
    /// kernel-relay penalties) to a concrete-topology view; see
    /// [`TopologyView::Topology::pair_factor`].
    ///
    /// # Panics
    /// On a [`TopologyView::FullMesh`] view (which has no relays by
    /// definition) or when the matrix is not `num_servers × num_servers`.
    pub fn with_pair_factors(mut self, factors: Vec<Vec<f64>>) -> Self {
        match &mut self {
            TopologyView::FullMesh { .. } => {
                panic!("pair factors only apply to concrete topologies")
            }
            TopologyView::Topology { num_servers, pair_factor, .. } => {
                assert_eq!(factors.len(), *num_servers, "pair-factor matrix height");
                assert!(
                    factors.iter().all(|row| row.len() == *num_servers),
                    "pair-factor matrix width"
                );
                *pair_factor = Some(factors);
            }
        }
        self
    }

    /// Throughput multiplier of a server pair's logical connection (1.0
    /// when no factors are attached).
    pub fn pair_throughput_factor(&self, src: usize, dst: usize) -> f64 {
        match self {
            TopologyView::FullMesh { .. } => 1.0,
            TopologyView::Topology { pair_factor, .. } => {
                pair_factor.as_ref().map(|f| f[src][dst]).unwrap_or(1.0)
            }
        }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        match self {
            TopologyView::FullMesh { n, .. } => *n,
            TopologyView::Topology { num_servers, .. } => *num_servers,
        }
    }

    /// Hop count and path bottleneck (bps) between two servers.
    pub fn path_info(&self, src: usize, dst: usize) -> (usize, f64) {
        match self {
            TopologyView::FullMesh { per_server_bps, .. } => (1, *per_server_bps),
            TopologyView::Topology { hops, bottleneck, .. } => {
                let h = hops[src][dst];
                if h == usize::MAX {
                    (usize::MAX, 0.0)
                } else {
                    (h, bottleneck[src][dst])
                }
            }
        }
    }

    /// Total NIC capacity of one server.
    pub fn server_bandwidth(&self, s: usize) -> f64 {
        match self {
            TopologyView::FullMesh { per_server_bps, .. } => *per_server_bps,
            TopologyView::Topology { server_bps, .. } => server_bps[s],
        }
    }

    /// Total network capacity.
    pub fn total_bandwidth(&self) -> f64 {
        match self {
            TopologyView::FullMesh { n, per_server_bps } => *per_server_bps * *n as f64,
            TopologyView::Topology { total_bps, .. } => *total_bps,
        }
    }

    /// True if every server pair can communicate.
    pub fn fully_reachable(&self) -> bool {
        match self {
            TopologyView::FullMesh { .. } => true,
            TopologyView::Topology { hops, num_servers, .. } => (0..*num_servers)
                .all(|s| (0..*num_servers).all(|d| s == d || hops[s][d] != usize::MAX)),
        }
    }
}

/// Breakdown of one training iteration's estimated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationEstimate {
    /// Compute time of the busiest server (seconds).
    pub compute_s: f64,
    /// AllReduce communication time (seconds).
    pub allreduce_s: f64,
    /// Model-parallel communication time (seconds).
    pub mp_s: f64,
    /// Total iteration time (no compute/communication overlap, matching the
    /// formulation of §5.4 Eq. 1).
    pub total_s: f64,
}

/// Estimate the iteration time of `strategy` for `model` on the network
/// described by `view`.
pub fn estimate_iteration_time(
    model: &DnnModel,
    strategy: &ParallelizationStrategy,
    view: &TopologyView,
    params: &ComputeParams,
) -> IterationEstimate {
    let demands = extract_traffic(model, strategy, params.gpus_per_server);
    estimate_from_demands(model, strategy, &demands, view, params)
}

/// Estimate using pre-extracted demands (lets the alternating-optimization
/// loop reuse one extraction for several candidate topologies).
pub fn estimate_from_demands(
    model: &DnnModel,
    strategy: &ParallelizationStrategy,
    demands: &TrafficDemands,
    view: &TopologyView,
    params: &ComputeParams,
) -> IterationEstimate {
    let n = strategy.num_servers;
    let local_batch = demands.samples_per_server;
    let global_batch = local_batch * n as f64;

    // --- Compute: per-server FLOP load; the slowest server gates the
    // iteration.
    let mut load = vec![0.0f64; n];
    for (op_id, node) in model.ops.iter().enumerate() {
        let flops = node.op.total_flops();
        match strategy.placement(op_id) {
            PlacementKind::Replicated => {
                for l in load.iter_mut() {
                    *l += flops * local_batch;
                }
            }
            PlacementKind::Single(s) => {
                load[*s] += flops * global_batch;
            }
            PlacementKind::Sharded(v) => {
                for &s in v {
                    load[s] += flops * global_batch / v.len() as f64;
                }
            }
        }
    }
    let compute_s = load.iter().cloned().fold(0.0, f64::max) / params.server_flops();

    // --- AllReduce: ring model per group over the bandwidth the topology
    // gives the slowest member.
    let mut allreduce_s: f64 = 0.0;
    for g in &demands.allreduce_groups {
        let k = g.members.len() as f64;
        if k <= 1.0 {
            continue;
        }
        let min_bw =
            g.members.iter().map(|&m| view.server_bandwidth(m)).fold(f64::INFINITY, f64::min);
        let bits = g.bytes * 8.0;
        allreduce_s += 2.0 * (k - 1.0) * (params.alpha_s + bits / k / min_bw.max(1.0));
    }

    // --- Model parallel: per-server egress/ingress bottlenecks plus a
    // network-wide bound that charges the hop-count bandwidth tax.
    let mut egress = vec![0.0f64; n];
    let mut ingress = vec![0.0f64; n];
    let mut taxed_bits = 0.0f64;
    let mut max_hops = 0usize;
    let mut unreachable = false;
    let mut relay_bound_s = 0.0f64;
    for (src, dst, bytes) in demands.mp.entries_desc() {
        egress[src] += bytes;
        ingress[dst] += bytes;
        let (hops, bneck) = view.path_info(src, dst);
        if hops == usize::MAX {
            unreachable = true;
            continue;
        }
        max_hops = max_hops.max(hops);
        taxed_bits += bytes * 8.0 * hops as f64;
        // Kernel-relay penalty (§6 / Appendix I): a relayed logical
        // connection cannot run faster than its per-pair factor times the
        // path bottleneck, no matter how idle the fabric is. Factors of
        // 1.0 (the default) add no bound beyond the terms above.
        let factor = view.pair_throughput_factor(src, dst);
        if factor < 1.0 && bytes > 0.0 {
            if factor <= 0.0 {
                unreachable = true; // no logical RDMA connection
            } else {
                relay_bound_s = relay_bound_s.max(bytes * 8.0 / (factor * bneck.max(1.0)));
            }
        }
    }
    let mut mp_s = 0.0f64;
    for s in 0..n {
        let bw = view.server_bandwidth(s).max(1.0);
        mp_s = mp_s.max(egress[s] * 8.0 / bw).max(ingress[s] * 8.0 / bw);
    }
    mp_s = mp_s.max(taxed_bits / view.total_bandwidth().max(1.0)).max(relay_bound_s);
    if demands.total_mp_bytes() > 0.0 {
        mp_s += params.alpha_s * max_hops as f64;
    }
    if unreachable {
        mp_s = f64::INFINITY;
    }

    let total_s = compute_s + allreduce_s + mp_s;
    IterationEstimate { compute_s, allreduce_s, mp_s, total_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ParallelizationStrategy;
    use topoopt_graph::topologies;
    use topoopt_models::zoo::{build_dlrm, build_model};
    use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};

    #[test]
    fn full_mesh_view_reports_one_hop() {
        let v = TopologyView::FullMesh { n: 16, per_server_bps: 100.0e9 };
        assert_eq!(v.path_info(0, 5), (1, 100.0e9));
        assert_eq!(v.num_servers(), 16);
        assert!(v.fully_reachable());
    }

    #[test]
    fn graph_view_computes_hops_and_bottleneck() {
        // 0 -> 1 -> 2 chain with shrinking capacity.
        let mut g = topoopt_graph::Graph::new(3);
        g.add_edge(0, 1, 100.0);
        g.add_edge(1, 2, 10.0);
        g.add_edge(2, 1, 10.0);
        g.add_edge(1, 0, 100.0);
        let v = TopologyView::from_graph(&g, 3);
        assert_eq!(v.path_info(0, 2), (2, 10.0));
        assert_eq!(v.path_info(0, 1), (1, 100.0));
        assert!(v.fully_reachable());
    }

    #[test]
    fn disconnected_topology_gives_infinite_mp_time() {
        let m = build_dlrm(&DlrmConfig::shared());
        let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 4);
        let mut g = topoopt_graph::Graph::new(4);
        g.add_bidi_edge(0, 1, 100.0e9); // servers 2, 3 are isolated
        let v = TopologyView::from_graph(&g, 4);
        let est = estimate_iteration_time(&m, &s, &v, &ComputeParams::default());
        assert!(est.mp_s.is_infinite());
    }

    #[test]
    fn pair_factors_slow_relayed_mp_and_unit_factors_change_nothing() {
        let m = build_dlrm(&DlrmConfig::shared());
        let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 8);
        let g = topologies::from_permutations(8, &[1, 3], 25.0e9);
        let p = ComputeParams::default();
        let base = estimate_iteration_time(&m, &s, &TopologyView::from_graph(&g, 8), &p);

        let unit = vec![vec![1.0; 8]; 8];
        let unit_view = TopologyView::from_graph(&g, 8).with_pair_factors(unit);
        let same = estimate_iteration_time(&m, &s, &unit_view, &p);
        assert_eq!(base, same, "unit factors must not change the estimate");

        // Heavy kernel penalty on every pair: MP time grows, the rest stays.
        let taxed = vec![vec![0.05; 8]; 8];
        let taxed_view = TopologyView::from_graph(&g, 8).with_pair_factors(taxed);
        let slow = estimate_iteration_time(&m, &s, &taxed_view, &p);
        assert!(slow.mp_s > base.mp_s, "{} vs {}", slow.mp_s, base.mp_s);
        assert_eq!(slow.compute_s, base.compute_s);
        assert_eq!(slow.allreduce_s, base.allreduce_s);

        // Factor 0 = no logical connection: the strategy is infeasible.
        let cut = vec![vec![0.0; 8]; 8];
        let cut_view = TopologyView::from_graph(&g, 8).with_pair_factors(cut);
        let dead = estimate_iteration_time(&m, &s, &cut_view, &p);
        assert!(dead.mp_s.is_infinite());
    }

    #[test]
    fn more_bandwidth_means_faster_allreduce() {
        let m = build_model(ModelKind::Vgg16, ModelPreset::Dedicated);
        let s = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let p = ComputeParams::default();
        let slow = estimate_iteration_time(
            &m,
            &s,
            &TopologyView::FullMesh { n: 16, per_server_bps: 10.0e9 },
            &p,
        );
        let fast = estimate_iteration_time(
            &m,
            &s,
            &TopologyView::FullMesh { n: 16, per_server_bps: 400.0e9 },
            &p,
        );
        assert!(slow.allreduce_s > 5.0 * fast.allreduce_s);
        assert_eq!(slow.compute_s, fast.compute_s);
        assert!(slow.total_s > fast.total_s);
    }

    #[test]
    fn hybrid_dlrm_beats_pure_data_parallel_on_low_bandwidth() {
        // The §2.1 motivation: on a modest network, pure data parallelism of
        // a huge-embedding DLRM is far slower than the hybrid strategy.
        let m = build_dlrm(&DlrmConfig::motivating_example());
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 100.0e9 };
        let p = ComputeParams::default();
        let dp = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let hybrid = ParallelizationStrategy::meta_dlrm_example(&m, 16);
        let t_dp = estimate_iteration_time(&m, &dp, &view, &p);
        let t_hy = estimate_iteration_time(&m, &hybrid, &view, &p);
        assert!(
            t_hy.total_s < t_dp.total_s / 2.0,
            "hybrid {} vs dp {}",
            t_hy.total_s,
            t_dp.total_s
        );
    }

    #[test]
    fn direct_topology_with_more_nics_beats_single_nic() {
        let m = build_model(ModelKind::Candle, ModelPreset::Shared);
        let s = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let p = ComputeParams::default();
        let d1 = topologies::from_permutations(16, &[1], 25.0e9);
        let d4 = topologies::from_permutations(16, &[1, 3, 5, 7], 25.0e9);
        let t1 = estimate_iteration_time(&m, &s, &TopologyView::from_graph(&d1, 16), &p);
        let t4 = estimate_iteration_time(&m, &s, &TopologyView::from_graph(&d4, 16), &p);
        assert!(t4.allreduce_s < t1.allreduce_s);
    }

    #[test]
    fn compute_dominates_for_resnet() {
        // ResNet50 is compute-bound (Figure 11f: all fabrics similar).
        let m = build_model(ModelKind::ResNet50, ModelPreset::Dedicated);
        let s = ParallelizationStrategy::pure_data_parallel(&m, 128);
        let p = ComputeParams::default();
        let est = estimate_iteration_time(
            &m,
            &s,
            &TopologyView::FullMesh { n: 128, per_server_bps: 100.0e9 },
            &p,
        );
        assert!(est.compute_s > est.allreduce_s);
    }
}
