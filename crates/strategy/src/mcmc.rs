//! Markov-chain Monte-Carlo search over parallelization strategies.
//!
//! This reproduces FlexFlow's MCMC search (§4.1): starting from a candidate
//! strategy, each step proposes a local mutation (move an operator to a
//! different server, toggle an operator between replicated and single-server
//! placement, or re-shard it), evaluates the iteration-time estimate on the
//! current topology view, and accepts the proposal with the Metropolis
//! criterion. The best strategy ever seen is returned.

use crate::costmodel::{estimate_iteration_time, ComputeParams, IterationEstimate, TopologyView};
use crate::placement::{ParallelizationStrategy, PlacementKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use topoopt_models::DnnModel;

/// Search hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McmcConfig {
    /// Number of proposal steps.
    pub iterations: usize,
    /// Metropolis temperature expressed as a fraction of the current cost
    /// (higher accepts more uphill moves).
    pub temperature: f64,
    /// RNG seed (searches are deterministic given the seed).
    pub seed: u64,
    /// If true, only embedding tables and large dense layers are eligible
    /// for model-parallel placement — mirrors how DLRM-style models are
    /// actually parallelized and keeps the chain in the useful region.
    pub restrict_to_heavy_ops: bool,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig { iterations: 400, temperature: 0.05, seed: 1, restrict_to_heavy_ops: true }
    }
}

/// Result of one search run.
#[derive(Debug, Clone)]
pub struct McmcResult {
    /// The best strategy found.
    pub strategy: ParallelizationStrategy,
    /// Its estimated iteration time breakdown.
    pub estimate: IterationEstimate,
    /// Number of accepted proposals.
    pub accepted: usize,
    /// Number of proposals evaluated.
    pub evaluated: usize,
}

/// Operators eligible for model-parallel placement under
/// `restrict_to_heavy_ops`: embedding tables, plus parameterised layers
/// whose parameter footprint exceeds 64 MB.
fn mp_candidates(model: &DnnModel, restrict: bool) -> Vec<usize> {
    (0..model.num_ops())
        .filter(|&i| {
            let op = &model.ops[i].op;
            if !op.has_params() {
                return false;
            }
            if !restrict {
                return true;
            }
            op.is_embedding() || op.param_bytes() > 64.0e6
        })
        .collect()
}

/// Run the MCMC search starting from `initial` (typically
/// [`ParallelizationStrategy::hybrid_embeddings_round_robin`] or pure data
/// parallelism) against the network `view`.
pub fn search_strategy(
    model: &DnnModel,
    initial: ParallelizationStrategy,
    view: &TopologyView,
    params: &ComputeParams,
    cfg: &McmcConfig,
) -> McmcResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = initial.num_servers;
    let candidates = mp_candidates(model, cfg.restrict_to_heavy_ops);

    let mut current = initial;
    let mut current_est = estimate_iteration_time(model, &current, view, params);
    let mut best = current.clone();
    let mut best_est = current_est;
    let mut accepted = 0usize;
    let mut evaluated = 0usize;

    for _ in 0..cfg.iterations {
        if candidates.is_empty() {
            break;
        }
        let mut proposal = current.clone();
        let op = candidates[rng.gen_range(0..candidates.len())];
        let new_kind = propose_kind(&proposal.placements[op].kind, n, &mut rng);
        proposal.placements[op].kind = new_kind;

        let est = estimate_iteration_time(model, &proposal, view, params);
        evaluated += 1;
        let accept = if est.total_s <= current_est.total_s {
            true
        } else {
            // Metropolis: accept uphill with probability exp(-Δ / (T·cost)).
            let delta = est.total_s - current_est.total_s;
            let scale = (cfg.temperature * current_est.total_s).max(1e-12);
            rng.gen::<f64>() < (-delta / scale).exp()
        };
        if accept {
            current = proposal;
            current_est = est;
            accepted += 1;
            if current_est.total_s < best_est.total_s {
                best = current.clone();
                best_est = current_est;
            }
        }
    }

    McmcResult { strategy: best, estimate: best_est, accepted, evaluated }
}

/// Propose a new placement for one operator.
fn propose_kind(kind: &PlacementKind, n: usize, rng: &mut StdRng) -> PlacementKind {
    match kind {
        PlacementKind::Replicated => {
            // Move to a single random server, or shard across a random
            // power-of-two subset.
            if rng.gen_bool(0.7) || n < 4 {
                PlacementKind::Single(rng.gen_range(0..n))
            } else {
                let size = [2usize, 4, 8][rng.gen_range(0..3usize)].min(n);
                let start = rng.gen_range(0..n);
                PlacementKind::Sharded((0..size).map(|i| (start + i) % n).collect())
            }
        }
        PlacementKind::Single(s) => {
            // Move to another server or go back to replicated.
            if rng.gen_bool(0.5) {
                PlacementKind::Replicated
            } else {
                let mut t = rng.gen_range(0..n);
                if t == *s {
                    t = (t + 1) % n;
                }
                PlacementKind::Single(t)
            }
        }
        PlacementKind::Sharded(v) => {
            if rng.gen_bool(0.5) {
                PlacementKind::Replicated
            } else {
                PlacementKind::Single(v[rng.gen_range(0..v.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_models::zoo::{build_dlrm, build_model};
    use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};

    fn quick_cfg(seed: u64) -> McmcConfig {
        McmcConfig { iterations: 120, temperature: 0.05, seed, restrict_to_heavy_ops: true }
    }

    #[test]
    fn search_never_returns_worse_than_initial() {
        let m = build_dlrm(&DlrmConfig::shared());
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 100.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let init_est = estimate_iteration_time(&m, &init, &view, &p);
        let result = search_strategy(&m, init, &view, &p, &quick_cfg(3));
        assert!(result.estimate.total_s <= init_est.total_s + 1e-12);
        result.strategy.validate(&m).unwrap();
    }

    #[test]
    fn search_discovers_hybrid_for_embedding_heavy_model() {
        // Starting from pure data parallelism on a DLRM whose embeddings
        // dwarf the dense part, the search should move at least some tables
        // off the replicated path.
        let m = build_dlrm(&DlrmConfig::shared());
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 25.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let result = search_strategy(&m, init, &view, &p, &quick_cfg(7));
        assert!(result.strategy.num_model_parallel_ops() > 0);
        assert!(result.accepted > 0);
    }

    #[test]
    fn search_is_deterministic_for_fixed_seed() {
        let m = build_model(ModelKind::Ncf, ModelPreset::Dedicated);
        let view = TopologyView::FullMesh { n: 8, per_server_bps: 50.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 8);
        let a = search_strategy(&m, init.clone(), &view, &p, &quick_cfg(11));
        let b = search_strategy(&m, init, &view, &p, &quick_cfg(11));
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.estimate.total_s, b.estimate.total_s);
    }

    #[test]
    fn compute_bound_model_stays_data_parallel() {
        // ResNet50 has small parameters and heavy compute; the search should
        // keep it (essentially) data parallel even on a slow network.
        let m = build_model(ModelKind::ResNet50, ModelPreset::Dedicated);
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 10.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let result = search_strategy(&m, init, &view, &p, &quick_cfg(5));
        assert!(result.strategy.num_model_parallel_ops() <= 2);
    }

    #[test]
    fn candidate_restriction_limits_eligible_ops() {
        let m = build_model(ModelKind::Bert, ModelPreset::Shared);
        let all = mp_candidates(&m, false);
        let heavy = mp_candidates(&m, true);
        assert!(heavy.len() <= all.len());
        assert!(!all.is_empty());
    }
}
