//! Markov-chain Monte-Carlo search over parallelization strategies.
//!
//! This reproduces FlexFlow's MCMC search (§4.1): starting from a candidate
//! strategy, each step proposes a local mutation (move an operator to a
//! different server, toggle an operator between replicated and single-server
//! placement, or re-shard it), evaluates the iteration-time estimate on the
//! current topology view, and accepts the proposal with the Metropolis
//! criterion. The best strategy ever seen is returned.
//!
//! Two engine-level optimisations keep the search fast at scale:
//!
//! * **Incremental cost evaluation** — each proposal mutates exactly one
//!   operator, so the chain drives a [`CostEvaluator`] with a
//!   mutate-and-revert loop instead of cloning the strategy and re-running
//!   the full estimator per step ([`search_strategy_reference`] keeps the
//!   original clone-per-proposal loop as the equivalence oracle and bench
//!   baseline).
//! * **Parallel multi-chain search** — [`McmcConfig::chains`] independent
//!   chains run on rayon threads from seeds derived deterministically from
//!   [`McmcConfig::seed`]; results are collected in chain order and the
//!   best is returned, so a fixed seed yields the same result regardless of
//!   thread count (`RAYON_NUM_THREADS=1` included).

use crate::costmodel::{estimate_iteration_time, ComputeParams, IterationEstimate, TopologyView};
use crate::evaluator::CostEvaluator;
use crate::placement::{ParallelizationStrategy, PlacementKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use topoopt_models::DnnModel;

/// Search hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McmcConfig {
    /// Number of proposal steps per chain.
    pub iterations: usize,
    /// Metropolis temperature expressed as a fraction of the current cost
    /// (higher accepts more uphill moves).
    pub temperature: f64,
    /// RNG seed (searches are deterministic given the seed, regardless of
    /// thread count).
    pub seed: u64,
    /// If true, only embedding tables and large dense layers are eligible
    /// for model-parallel placement — mirrors how DLRM-style models are
    /// actually parallelized and keeps the chain in the useful region.
    pub restrict_to_heavy_ops: bool,
    /// Number of independent chains run in parallel; the best result wins.
    /// Chain `k` is seeded from `seed` (chain 0 uses `seed` itself, so
    /// `chains = 1` reproduces the single-chain trajectory).
    pub chains: usize,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            iterations: 400,
            temperature: 0.05,
            seed: 1,
            restrict_to_heavy_ops: true,
            chains: 4,
        }
    }
}

/// Result of one search run.
#[derive(Debug, Clone)]
pub struct McmcResult {
    /// The best strategy found (across all chains).
    pub strategy: ParallelizationStrategy,
    /// Its estimated iteration time breakdown.
    pub estimate: IterationEstimate,
    /// Number of accepted proposals (summed over chains).
    pub accepted: usize,
    /// Number of proposals evaluated (summed over chains).
    pub evaluated: usize,
}

/// Operators eligible for model-parallel placement under
/// `restrict_to_heavy_ops`: embedding tables, plus parameterised layers
/// whose parameter footprint exceeds 64 MB.
fn mp_candidates(model: &DnnModel, restrict: bool) -> Vec<usize> {
    (0..model.num_ops())
        .filter(|&i| {
            let op = &model.ops[i].op;
            if !op.has_params() {
                return false;
            }
            if !restrict {
                return true;
            }
            op.is_embedding() || op.param_bytes() > 64.0e6
        })
        .collect()
}

/// Deterministic per-chain seed: chain 0 keeps `seed` (so a single chain
/// reproduces the historical trajectory), later chains take fixed
/// golden-ratio strides through the seed space.
fn chain_seed(seed: u64, chain: u64) -> u64 {
    seed.wrapping_add(chain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run the MCMC search starting from `initial` (typically
/// [`ParallelizationStrategy::hybrid_embeddings_round_robin`] or pure data
/// parallelism) against the network `view`. With `cfg.chains > 1`,
/// independent chains run in parallel and the best result is returned
/// (ties broken by lowest chain index, so the outcome is independent of
/// thread scheduling).
pub fn search_strategy(
    model: &DnnModel,
    initial: ParallelizationStrategy,
    view: &TopologyView,
    params: &ComputeParams,
    cfg: &McmcConfig,
) -> McmcResult {
    let chains = cfg.chains.max(1);
    if chains == 1 {
        return search_one_chain(model, initial, view, params, cfg, cfg.seed);
    }
    let results: Vec<McmcResult> = (0..chains as u64)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|k| {
            search_one_chain(model, initial.clone(), view, params, cfg, chain_seed(cfg.seed, k))
        })
        .collect();
    let accepted = results.iter().map(|r| r.accepted).sum();
    let evaluated = results.iter().map(|r| r.evaluated).sum();
    let best = results
        .into_iter()
        .min_by(|a, b| a.estimate.total_s.total_cmp(&b.estimate.total_s))
        .expect("at least one chain runs");
    McmcResult { accepted, evaluated, ..best }
}

/// One Metropolis chain over an incremental [`CostEvaluator`]: proposals
/// are applied in place and reverted on rejection; the strategy is cloned
/// only when a new best is recorded.
fn search_one_chain(
    model: &DnnModel,
    initial: ParallelizationStrategy,
    view: &TopologyView,
    params: &ComputeParams,
    cfg: &McmcConfig,
    seed: u64,
) -> McmcResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = initial.num_servers;
    let candidates = mp_candidates(model, cfg.restrict_to_heavy_ops);

    let mut eval = CostEvaluator::new(model, initial, view, params);
    let mut current_est = eval.estimate();
    let mut best = eval.strategy().clone();
    let mut best_est = current_est;
    let mut accepted = 0usize;
    let mut evaluated = 0usize;

    for _ in 0..cfg.iterations {
        if candidates.is_empty() {
            break;
        }
        let op = candidates[rng.gen_range(0..candidates.len())];
        let new_kind = propose_kind(&eval.strategy().placements[op].kind, n, &mut rng);
        let old_kind = eval.set_placement(op, new_kind);

        let est = eval.estimate();
        evaluated += 1;
        let accept = if est.total_s <= current_est.total_s {
            true
        } else {
            // Metropolis: accept uphill with probability exp(-Δ / (T·cost)).
            let delta = est.total_s - current_est.total_s;
            let scale = (cfg.temperature * current_est.total_s).max(1e-12);
            rng.gen::<f64>() < (-delta / scale).exp()
        };
        if accept {
            current_est = est;
            accepted += 1;
            if current_est.total_s < best_est.total_s {
                best = eval.strategy().clone();
                best_est = current_est;
            }
        } else {
            eval.set_placement(op, old_kind);
        }
    }

    McmcResult { strategy: best, estimate: best_est, accepted, evaluated }
}

/// The original clone-per-proposal, full-re-estimation search loop (always
/// single-chain; `cfg.chains` is ignored). Kept as the correctness oracle
/// for the incremental path and as the baseline of the `search` Criterion
/// bench — prefer [`search_strategy`] everywhere else.
pub fn search_strategy_reference(
    model: &DnnModel,
    initial: ParallelizationStrategy,
    view: &TopologyView,
    params: &ComputeParams,
    cfg: &McmcConfig,
) -> McmcResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = initial.num_servers;
    let candidates = mp_candidates(model, cfg.restrict_to_heavy_ops);

    let mut current = initial;
    let mut current_est = estimate_iteration_time(model, &current, view, params);
    let mut best = current.clone();
    let mut best_est = current_est;
    let mut accepted = 0usize;
    let mut evaluated = 0usize;

    for _ in 0..cfg.iterations {
        if candidates.is_empty() {
            break;
        }
        let mut proposal = current.clone();
        let op = candidates[rng.gen_range(0..candidates.len())];
        let new_kind = propose_kind(&proposal.placements[op].kind, n, &mut rng);
        proposal.placements[op].kind = new_kind;

        let est = estimate_iteration_time(model, &proposal, view, params);
        evaluated += 1;
        let accept = if est.total_s <= current_est.total_s {
            true
        } else {
            let delta = est.total_s - current_est.total_s;
            let scale = (cfg.temperature * current_est.total_s).max(1e-12);
            rng.gen::<f64>() < (-delta / scale).exp()
        };
        if accept {
            current = proposal;
            current_est = est;
            accepted += 1;
            if current_est.total_s < best_est.total_s {
                best = current.clone();
                best_est = current_est;
            }
        }
    }

    McmcResult { strategy: best, estimate: best_est, accepted, evaluated }
}

/// Propose a new placement for one operator.
fn propose_kind(kind: &PlacementKind, n: usize, rng: &mut StdRng) -> PlacementKind {
    match kind {
        PlacementKind::Replicated => {
            // Move to a single random server, or shard across a random
            // power-of-two subset.
            if rng.gen_bool(0.7) || n < 4 {
                PlacementKind::Single(rng.gen_range(0..n))
            } else {
                let size = [2usize, 4, 8][rng.gen_range(0..3usize)].min(n);
                let start = rng.gen_range(0..n);
                PlacementKind::Sharded((0..size).map(|i| (start + i) % n).collect())
            }
        }
        PlacementKind::Single(s) => {
            // Move to another server or go back to replicated.
            if rng.gen_bool(0.5) {
                PlacementKind::Replicated
            } else {
                let mut t = rng.gen_range(0..n);
                if t == *s {
                    t = (t + 1) % n;
                }
                PlacementKind::Single(t)
            }
        }
        PlacementKind::Sharded(v) => {
            if rng.gen_bool(0.5) {
                PlacementKind::Replicated
            } else {
                PlacementKind::Single(v[rng.gen_range(0..v.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_models::zoo::{build_dlrm, build_model};
    use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};

    fn quick_cfg(seed: u64) -> McmcConfig {
        McmcConfig {
            iterations: 120,
            temperature: 0.05,
            seed,
            restrict_to_heavy_ops: true,
            chains: 1,
        }
    }

    #[test]
    fn search_never_returns_worse_than_initial() {
        let m = build_dlrm(&DlrmConfig::shared());
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 100.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let init_est = estimate_iteration_time(&m, &init, &view, &p);
        let result = search_strategy(&m, init, &view, &p, &quick_cfg(3));
        assert!(result.estimate.total_s <= init_est.total_s + 1e-12);
        result.strategy.validate(&m).unwrap();
    }

    #[test]
    fn search_discovers_hybrid_for_embedding_heavy_model() {
        // Starting from pure data parallelism on a DLRM whose embeddings
        // dwarf the dense part, the search should move at least some tables
        // off the replicated path.
        let m = build_dlrm(&DlrmConfig::shared());
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 25.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let result = search_strategy(&m, init, &view, &p, &quick_cfg(7));
        assert!(result.strategy.num_model_parallel_ops() > 0);
        assert!(result.accepted > 0);
    }

    #[test]
    fn search_is_deterministic_for_fixed_seed() {
        let m = build_model(ModelKind::Ncf, ModelPreset::Dedicated);
        let view = TopologyView::FullMesh { n: 8, per_server_bps: 50.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 8);
        for chains in [1usize, 4] {
            let mut cfg = quick_cfg(11);
            cfg.chains = chains;
            let a = search_strategy(&m, init.clone(), &view, &p, &cfg);
            let b = search_strategy(&m, init.clone(), &view, &p, &cfg);
            assert_eq!(a.strategy, b.strategy, "chains = {chains}");
            assert_eq!(a.estimate.total_s, b.estimate.total_s);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.evaluated, b.evaluated);
        }
    }

    #[test]
    fn multi_chain_is_deterministic_across_thread_counts() {
        // The vendored rayon honors RAYON_NUM_THREADS; a serial run and a
        // parallel run of the same multi-chain search must agree exactly.
        let m = build_model(ModelKind::Ncf, ModelPreset::Dedicated);
        let view = TopologyView::FullMesh { n: 8, per_server_bps: 50.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 8);
        let mut cfg = quick_cfg(13);
        cfg.chains = 6;
        // Env mutation is safe here: every read goes through std::env (which
        // serializes access internally — no C-level getenv runs in this
        // process), and a sibling test that transiently observes the capped
        // value only loses parallelism, never determinism — which is exactly
        // the property under test.
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = search_strategy(&m, init.clone(), &view, &p, &cfg);
        std::env::remove_var("RAYON_NUM_THREADS");
        let parallel = search_strategy(&m, init, &view, &p, &cfg);
        assert_eq!(serial.strategy, parallel.strategy);
        assert_eq!(serial.estimate.total_s, parallel.estimate.total_s);
        assert_eq!(serial.accepted, parallel.accepted);
        assert_eq!(serial.evaluated, parallel.evaluated);
    }

    #[test]
    fn multi_chain_never_loses_to_its_own_first_chain() {
        // Chain 0 of a multi-chain run is the single-chain run, so the
        // multi-chain best can only match or beat it; counters aggregate.
        let m = build_dlrm(&DlrmConfig::shared());
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 25.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let single = search_strategy(&m, init.clone(), &view, &p, &quick_cfg(21));
        let mut cfg = quick_cfg(21);
        cfg.chains = 4;
        let multi = search_strategy(&m, init, &view, &p, &cfg);
        assert!(multi.estimate.total_s <= single.estimate.total_s + 1e-12);
        assert_eq!(multi.evaluated, 4 * single.evaluated);
    }

    #[test]
    fn incremental_search_matches_reference_loop() {
        // Same seed, same proposals, same accept decisions: the incremental
        // evaluator must retrace the clone-per-proposal reference exactly
        // (float round-off between the two paths is far smaller than any
        // accept-threshold gap seen in practice).
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 25.0e9 };
        let p = ComputeParams::default();
        for (kind, seed) in [(ModelKind::Dlrm, 5u64), (ModelKind::Ncf, 9), (ModelKind::Bert, 2)] {
            let m = build_model(kind, ModelPreset::Shared);
            let init = ParallelizationStrategy::pure_data_parallel(&m, 16);
            let cfg = quick_cfg(seed);
            let fast = search_strategy(&m, init.clone(), &view, &p, &cfg);
            let slow = search_strategy_reference(&m, init, &view, &p, &cfg);
            assert_eq!(fast.strategy, slow.strategy, "model {kind:?}");
            assert_eq!(fast.accepted, slow.accepted);
            assert_eq!(fast.evaluated, slow.evaluated);
            let (a, b) = (fast.estimate.total_s, slow.estimate.total_s);
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn compute_bound_model_stays_data_parallel() {
        // ResNet50 has small parameters and heavy compute; the search should
        // keep it (essentially) data parallel even on a slow network.
        let m = build_model(ModelKind::ResNet50, ModelPreset::Dedicated);
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 10.0e9 };
        let p = ComputeParams::default();
        let init = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let result = search_strategy(&m, init, &view, &p, &quick_cfg(5));
        assert!(result.strategy.num_model_parallel_ops() <= 2);
    }

    #[test]
    fn candidate_restriction_limits_eligible_ops() {
        let m = build_model(ModelKind::Bert, ModelPreset::Shared);
        let all = mp_candidates(&m, false);
        let heavy = mp_candidates(&m, true);
        assert!(heavy.len() <= all.len());
        assert!(!all.is_empty());
    }
}
