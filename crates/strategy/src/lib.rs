//! FlexNet-style parallelization strategy search.
//!
//! The paper's `Comp.×Comm.` plane (§4.1) is FlexFlow's MCMC search over
//! parallelization strategies and device placements, made network-aware
//! ("FlexNet"). This crate reproduces that plane:
//!
//! * [`placement`] — the strategy representation: per-operator placement
//!   (replicated / single-server / sharded), plus heuristic starting points
//!   such as the Meta DLRM placement of §2.1.
//! * [`traffic`] — extraction of the `T_AllReduce` (per-group AllReduce
//!   volumes) and `T_MP` (point-to-point model-parallel demand) inputs that
//!   the `TopologyFinder` consumes.
//! * [`costmodel`] — an analytical, topology-aware iteration-time estimate
//!   used inside the search loop.
//! * [`evaluator`] — the incremental form of that estimate: per-operator
//!   cached contributions re-evaluated only for the mutated operator.
//! * [`mcmc`] — the Markov-chain Monte-Carlo strategy search itself
//!   (mutate-and-revert over the incremental evaluator, parallel
//!   multi-chain via [`McmcConfig::chains`]).

pub mod costmodel;
pub mod evaluator;
pub mod mcmc;
pub mod placement;
pub mod traffic;

pub use costmodel::{
    estimate_from_demands, estimate_iteration_time, ComputeParams, IterationEstimate, TopologyView,
};
pub use evaluator::CostEvaluator;
pub use mcmc::{search_strategy, search_strategy_reference, McmcConfig, McmcResult};
pub use placement::{OpPlacement, ParallelizationStrategy, PlacementKind};
pub use traffic::{extract_traffic, AllReduceGroup, TrafficDemands};
