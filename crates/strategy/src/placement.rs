//! Parallelization strategy representation and heuristic starting points.

use serde::{Deserialize, Serialize};
use topoopt_models::{DnnModel, OpId};

/// How a single operator is parallelized across the job's servers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementKind {
    /// The operator (and its parameters) is replicated on every server; the
    /// batch is split across servers (data parallelism). Parameters must be
    /// synchronised by AllReduce each iteration.
    Replicated,
    /// The operator lives on exactly one server (model parallelism), e.g. an
    /// embedding table. Its activations/gradients travel to/from every
    /// server that consumes them.
    Single(usize),
    /// The operator is sharded across the listed servers (each holds a
    /// disjoint slice of the parameters). No AllReduce is needed for the
    /// sharded parameters, but activations are exchanged among the shard
    /// holders and consumers.
    Sharded(Vec<usize>),
}

/// Placement of one operator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpPlacement {
    /// Operator id within the model.
    pub op: OpId,
    /// Placement.
    pub kind: PlacementKind,
}

/// A complete parallelization strategy: one placement per operator, over a
/// job of `num_servers` servers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelizationStrategy {
    /// Number of servers dedicated to the job.
    pub num_servers: usize,
    /// One entry per model operator, indexed by `OpId`.
    pub placements: Vec<OpPlacement>,
}

impl ParallelizationStrategy {
    /// Pure data parallelism: every operator replicated on every server.
    pub fn pure_data_parallel(model: &DnnModel, num_servers: usize) -> Self {
        let placements = (0..model.num_ops())
            .map(|op| OpPlacement { op, kind: PlacementKind::Replicated })
            .collect();
        ParallelizationStrategy { num_servers, placements }
    }

    /// The hybrid strategy used at Meta for DLRM-style models (§2.1): every
    /// embedding table is placed on a single server (round-robin across the
    /// job's servers), and the rest of the model is replicated.
    pub fn hybrid_embeddings_round_robin(model: &DnnModel, num_servers: usize) -> Self {
        let mut s = Self::pure_data_parallel(model, num_servers);
        for (i, op) in model.embedding_ops().into_iter().enumerate() {
            s.placements[op].kind = PlacementKind::Single(i % num_servers);
        }
        s
    }

    /// The exact §2.1 motivating placement: tables 0..4 on servers 0, 3, 8,
    /// 13 of a 16-server job (used by the Figure 1 heatmap reproduction).
    /// Extra tables (if any) continue round-robin.
    pub fn meta_dlrm_example(model: &DnnModel, num_servers: usize) -> Self {
        let mut s = Self::pure_data_parallel(model, num_servers);
        let anchors = [0usize, 3, 8, 13];
        for (i, op) in model.embedding_ops().into_iter().enumerate() {
            let server = if i < anchors.len() && anchors[i] < num_servers {
                anchors[i]
            } else {
                i % num_servers
            };
            s.placements[op].kind = PlacementKind::Single(server);
        }
        s
    }

    /// Placement of operator `op`.
    pub fn placement(&self, op: OpId) -> &PlacementKind {
        &self.placements[op].kind
    }

    /// Servers that hold (a replica or shard of) operator `op`.
    pub fn servers_of(&self, op: OpId) -> Vec<usize> {
        match &self.placements[op].kind {
            PlacementKind::Replicated => (0..self.num_servers).collect(),
            PlacementKind::Single(s) => vec![*s],
            PlacementKind::Sharded(v) => v.clone(),
        }
    }

    /// Number of operators that are not replicated (i.e. use some form of
    /// model parallelism).
    pub fn num_model_parallel_ops(&self) -> usize {
        self.placements.iter().filter(|p| p.kind != PlacementKind::Replicated).count()
    }

    /// True when every operator is replicated.
    pub fn is_pure_data_parallel(&self) -> bool {
        self.num_model_parallel_ops() == 0
    }

    /// Validate the strategy against a model: one placement per op, all
    /// referenced servers in range, shards non-empty.
    pub fn validate(&self, model: &DnnModel) -> Result<(), String> {
        if self.placements.len() != model.num_ops() {
            return Err(format!(
                "strategy has {} placements but model has {} ops",
                self.placements.len(),
                model.num_ops()
            ));
        }
        for p in &self.placements {
            match &p.kind {
                PlacementKind::Replicated => {}
                PlacementKind::Single(s) => {
                    if *s >= self.num_servers {
                        return Err(format!("op {} placed on out-of-range server {s}", p.op));
                    }
                }
                PlacementKind::Sharded(v) => {
                    if v.is_empty() {
                        return Err(format!("op {} sharded across zero servers", p.op));
                    }
                    if v.iter().any(|&s| s >= self.num_servers) {
                        return Err(format!("op {} sharded onto out-of-range server", p.op));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_models::{build_model, ModelKind, ModelPreset};

    #[test]
    fn pure_data_parallel_replicates_everything() {
        let m = build_model(ModelKind::Vgg16, ModelPreset::Dedicated);
        let s = ParallelizationStrategy::pure_data_parallel(&m, 16);
        s.validate(&m).unwrap();
        assert!(s.is_pure_data_parallel());
        assert_eq!(s.servers_of(0).len(), 16);
    }

    #[test]
    fn hybrid_round_robin_places_embeddings_singly() {
        let m = build_model(ModelKind::Dlrm, ModelPreset::Dedicated);
        let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 16);
        s.validate(&m).unwrap();
        assert_eq!(s.num_model_parallel_ops(), 64);
        for op in m.embedding_ops() {
            assert_eq!(s.servers_of(op).len(), 1);
        }
    }

    #[test]
    fn meta_example_uses_anchor_servers() {
        let m = build_model(ModelKind::Dlrm, ModelPreset::Shared); // 16 tables
        let s = ParallelizationStrategy::meta_dlrm_example(&m, 16);
        s.validate(&m).unwrap();
        let emb = m.embedding_ops();
        assert_eq!(s.servers_of(emb[0]), vec![0]);
        assert_eq!(s.servers_of(emb[1]), vec![3]);
        assert_eq!(s.servers_of(emb[2]), vec![8]);
        assert_eq!(s.servers_of(emb[3]), vec![13]);
    }

    #[test]
    fn validate_rejects_out_of_range_server() {
        let m = build_model(ModelKind::Dlrm, ModelPreset::Shared);
        let mut s = ParallelizationStrategy::pure_data_parallel(&m, 4);
        s.placements[0].kind = PlacementKind::Single(9);
        assert!(s.validate(&m).is_err());
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let m = build_model(ModelKind::Bert, ModelPreset::Dedicated);
        let mut s = ParallelizationStrategy::pure_data_parallel(&m, 4);
        s.placements.pop();
        assert!(s.validate(&m).is_err());
    }

    #[test]
    fn sharded_placement_validates() {
        let m = build_model(ModelKind::Bert, ModelPreset::Dedicated);
        let mut s = ParallelizationStrategy::pure_data_parallel(&m, 8);
        s.placements[2].kind = PlacementKind::Sharded(vec![0, 1, 2, 3]);
        s.validate(&m).unwrap();
        assert_eq!(s.servers_of(2), vec![0, 1, 2, 3]);
        assert_eq!(s.num_model_parallel_ops(), 1);
    }
}
