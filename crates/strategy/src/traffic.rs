//! Extraction of AllReduce and model-parallel traffic demands from a
//! parallelization strategy.
//!
//! This is the hand-off point between the `Comp.×Comm.` plane and the
//! `Comm.×Topo.` plane (Figure 6): the strategy search produces a placement,
//! this module turns it into the `T_AllReduce` (per-group volumes) and
//! `T_MP` (point-to-point demand matrix) inputs of `TopologyFinder`.

use crate::placement::{ParallelizationStrategy, PlacementKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topoopt_graph::TrafficMatrix;
use topoopt_models::DnnModel;

/// One AllReduce group: a set of servers that must synchronise `bytes` of
/// parameters each iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllReduceGroup {
    /// Participating servers.
    pub members: Vec<usize>,
    /// Parameter bytes reduced across this group per iteration.
    pub bytes: f64,
}

/// The traffic demands of one training iteration under a given strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficDemands {
    /// Number of servers in the job.
    pub num_servers: usize,
    /// AllReduce groups (usually one spanning all servers, plus smaller
    /// groups when layers are replicated over subsets).
    pub allreduce_groups: Vec<AllReduceGroup>,
    /// Model-parallel point-to-point demand in bytes per iteration
    /// (activations forward + gradients backward).
    pub mp: TrafficMatrix,
    /// Samples processed per server per iteration (local batch).
    pub samples_per_server: f64,
}

impl TrafficDemands {
    /// Total AllReduce bytes (sum of per-group volumes).
    pub fn total_allreduce_bytes(&self) -> f64 {
        self.allreduce_groups.iter().map(|g| g.bytes).sum()
    }

    /// Total model-parallel bytes.
    pub fn total_mp_bytes(&self) -> f64 {
        self.mp.total()
    }

    /// Ratio of MP to AllReduce traffic (the x-axis annotation of Figure 12).
    pub fn mp_to_allreduce_ratio(&self) -> f64 {
        let ar = self.total_allreduce_bytes();
        if ar <= 0.0 {
            return if self.total_mp_bytes() > 0.0 { f64::INFINITY } else { 0.0 };
        }
        self.total_mp_bytes() / ar
    }
}

/// Extract the per-iteration traffic demands of `strategy` applied to
/// `model` on a cluster whose servers each host `gpus_per_server` GPUs.
pub fn extract_traffic(
    model: &DnnModel,
    strategy: &ParallelizationStrategy,
    gpus_per_server: usize,
) -> TrafficDemands {
    let n = strategy.num_servers;
    let local_batch = (model.batch_per_gpu * gpus_per_server) as f64;
    let global_batch = local_batch * n as f64;

    // --- AllReduce groups: replicated parameterised operators, grouped by
    // the (identical) set of servers holding the replicas.
    let mut groups: BTreeMap<Vec<usize>, f64> = BTreeMap::new();
    for (op_id, node) in model.ops.iter().enumerate() {
        if !node.op.has_params() {
            continue;
        }
        match strategy.placement(op_id) {
            PlacementKind::Replicated => {
                let members: Vec<usize> = (0..n).collect();
                *groups.entry(members).or_insert(0.0) += node.op.param_bytes();
            }
            PlacementKind::Sharded(servers) if servers.len() > 1 => {
                // Sharded parameters are disjoint: no AllReduce for the
                // shards themselves.
                let _ = servers;
            }
            _ => {}
        }
    }
    let allreduce_groups: Vec<AllReduceGroup> = groups
        .into_iter()
        .filter(|(m, b)| m.len() > 1 && *b > 0.0)
        .map(|(members, bytes)| AllReduceGroup { members, bytes })
        .collect();

    // --- Model-parallel traffic: activations (forward) and their gradients
    // (backward) crossing placement boundaries along every producer→consumer
    // edge of the model DAG.
    let mut mp = TrafficMatrix::new(n);
    for (consumer_id, node) in model.ops.iter().enumerate() {
        for &producer_id in &node.inputs {
            let producer = &model.ops[producer_id].op;
            let act_bytes = producer.activation_bytes();
            if act_bytes <= 0.0 {
                continue;
            }
            let p_kind = strategy.placement(producer_id).clone();
            let c_kind = strategy.placement(consumer_id).clone();
            add_edge_traffic(&mut mp, &p_kind, &c_kind, act_bytes, local_batch, global_batch, n);
        }
    }

    TrafficDemands { num_servers: n, allreduce_groups, mp, samples_per_server: local_batch }
}

/// Samples of the global batch that are *processed at* server `s` for an
/// operator with the given placement: replicated operators process their
/// local slice; single-server operators process the whole batch; shards
/// split the batch evenly.
fn samples_at(kind: &PlacementKind, s: usize, local_batch: f64, global_batch: f64) -> f64 {
    match kind {
        PlacementKind::Replicated => local_batch,
        PlacementKind::Single(h) => {
            if *h == s {
                global_batch
            } else {
                0.0
            }
        }
        PlacementKind::Sharded(v) => {
            if v.contains(&s) {
                global_batch / v.len() as f64
            } else {
                0.0
            }
        }
    }
}

fn holders(kind: &PlacementKind, n: usize) -> Vec<usize> {
    match kind {
        PlacementKind::Replicated => (0..n).collect(),
        PlacementKind::Single(s) => vec![*s],
        PlacementKind::Sharded(v) => v.clone(),
    }
}

/// Add the forward-activation and backward-gradient traffic of one
/// producer→consumer edge. Each sample's activation is produced where the
/// producer processes that sample and consumed where the consumer processes
/// it; when these servers differ the activation (and its gradient) crosses
/// the network.
fn add_edge_traffic(
    mp: &mut TrafficMatrix,
    producer: &PlacementKind,
    consumer: &PlacementKind,
    act_bytes_per_sample: f64,
    local_batch: f64,
    global_batch: f64,
    n: usize,
) {
    for_each_edge_transfer(
        producer,
        consumer,
        act_bytes_per_sample,
        local_batch,
        global_batch,
        n,
        |src, dst, bytes| {
            mp.add(src, dst, bytes);
        },
    );
}

/// Enumerate the `(src, dst, bytes)` transfers of one producer→consumer
/// edge — both the forward activations and the backward gradients. Shared by
/// [`extract_traffic`] and the incremental
/// [`crate::evaluator::CostEvaluator`], so both see byte-identical per-edge
/// contributions; every emitted `bytes` is strictly positive.
pub(crate) fn for_each_edge_transfer(
    producer: &PlacementKind,
    consumer: &PlacementKind,
    act_bytes_per_sample: f64,
    local_batch: f64,
    global_batch: f64,
    n: usize,
    mut emit: impl FnMut(usize, usize, f64),
) {
    // For every consumer-side server, the samples it processes must receive
    // activations from wherever those samples' activations were produced.
    for dst in holders(consumer, n) {
        let consumed = samples_at(consumer, dst, local_batch, global_batch);
        if consumed <= 0.0 {
            continue;
        }
        // Which servers produced those samples' activations? Under data
        // parallelism each sample's "home" is its replica server, so a
        // replicated producer contributes from every server proportionally;
        // a single/sharded producer contributes from its holders.
        let producer_holders = holders(producer, n);
        match producer {
            PlacementKind::Replicated => {
                // The consumed samples are distributed across all home
                // servers uniformly. If the consumer is also replicated, the
                // producing home is the consuming home: no traffic.
                match consumer {
                    PlacementKind::Replicated => {}
                    _ => {
                        let per_home = consumed / n as f64;
                        for src in 0..n {
                            if src != dst {
                                let bytes = act_bytes_per_sample * per_home;
                                emit(src, dst, bytes); // forward activations
                                emit(dst, src, bytes); // backward gradients
                            }
                        }
                    }
                }
            }
            PlacementKind::Single(_) | PlacementKind::Sharded(_) => {
                let share = 1.0 / producer_holders.len() as f64;
                for &src in &producer_holders {
                    if src != dst {
                        let bytes = act_bytes_per_sample * consumed * share;
                        emit(src, dst, bytes); // forward activations
                        emit(dst, src, bytes); // backward gradients
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ParallelizationStrategy;
    use topoopt_models::zoo::{build_dlrm, build_model};
    use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};

    const GB: f64 = 1.0e9;

    #[test]
    fn pure_data_parallel_has_one_allreduce_group_and_no_mp() {
        let m = build_model(ModelKind::Vgg16, ModelPreset::Dedicated);
        let s = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let t = extract_traffic(&m, &s, 4);
        assert_eq!(t.allreduce_groups.len(), 1);
        assert_eq!(t.allreduce_groups[0].members.len(), 16);
        assert!((t.allreduce_groups[0].bytes - m.total_param_bytes()).abs() < 1.0);
        assert_eq!(t.total_mp_bytes(), 0.0);
    }

    #[test]
    fn motivating_dlrm_data_parallel_is_about_22_gb_allreduce() {
        // Figure 1a: pure data parallelism over the 22 GB DLRM produces
        // ~44 GB of per-server AllReduce transfers (2x the model).
        let m = build_dlrm(&DlrmConfig::motivating_example());
        let s = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let t = extract_traffic(&m, &s, 1);
        let total = t.total_allreduce_bytes();
        assert!(total > 20.0 * GB && total < 24.0 * GB, "total = {}", total / GB);
    }

    #[test]
    fn hybrid_dlrm_shrinks_allreduce_and_creates_mp() {
        // Figure 1b: placing the embedding tables reduces the AllReduce
        // volume from ~22 GB to well under 1 GB and creates broadcast/incast
        // MP traffic from the table-holding servers to everyone else.
        let m = build_dlrm(&DlrmConfig::motivating_example());
        let s = ParallelizationStrategy::meta_dlrm_example(&m, 16);
        let t = extract_traffic(&m, &s, 1);
        assert!(t.total_allreduce_bytes() < 1.0 * GB);
        assert!(t.total_mp_bytes() > 0.0);
        // Table host (server 0) exchanges traffic with every other server.
        assert_eq!(t.mp.communication_degree(0), 15);
        // A server with no table only talks to the four table hosts.
        assert_eq!(t.mp.communication_degree(1), 4);
    }

    #[test]
    fn mp_transfer_size_matches_paper_arithmetic() {
        // §2.1: 16 servers, batch 8192/server, 512-wide embedding output ->
        // roughly 16–32 MB per (table-host, server) pair and direction.
        let m = build_dlrm(&DlrmConfig::motivating_example());
        let s = ParallelizationStrategy::meta_dlrm_example(&m, 16);
        let t = extract_traffic(&m, &s, 1);
        let emb = m.embedding_ops()[0];
        let host = s.servers_of(emb)[0];
        let one_way = t.mp.get(host, 1);
        let mb = one_way / 1.0e6;
        assert!(mb > 10.0 && mb < 70.0, "per-pair MP = {mb} MB");
    }

    #[test]
    fn single_to_single_edge_sends_global_batch_activations() {
        let m = build_model(ModelKind::Bert, ModelPreset::Shared);
        let mut s = ParallelizationStrategy::pure_data_parallel(&m, 8);
        // Chain two adjacent encoder blocks on different servers.
        s.placements[1].kind = PlacementKind::Single(0);
        s.placements[2].kind = PlacementKind::Single(5);
        let t = extract_traffic(&m, &s, 4);
        assert!(t.mp.get(0, 5) > 0.0);
        assert!(t.mp.get(5, 0) > 0.0);
    }

    #[test]
    fn ratio_reflects_batch_size_scaling() {
        // Larger batch -> more MP (activation) traffic relative to AllReduce
        // (parameter) traffic: the mechanism behind Figure 12.
        let small = {
            let m = build_dlrm(&DlrmConfig::all_to_all(64));
            let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 16);
            extract_traffic(&m, &s, 4).mp_to_allreduce_ratio()
        };
        let large = {
            let m = build_dlrm(&DlrmConfig::all_to_all(1024));
            let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 16);
            extract_traffic(&m, &s, 4).mp_to_allreduce_ratio()
        };
        assert!(large > 4.0 * small);
    }

    #[test]
    fn sharded_parameters_do_not_allreduce() {
        let m = build_model(ModelKind::Candle, ModelPreset::Shared);
        let mut s = ParallelizationStrategy::pure_data_parallel(&m, 8);
        let before = extract_traffic(&m, &s, 4).total_allreduce_bytes();
        s.placements[0].kind = PlacementKind::Sharded(vec![0, 1, 2, 3]);
        let after = extract_traffic(&m, &s, 4).total_allreduce_bytes();
        assert!(after < before);
    }
}
