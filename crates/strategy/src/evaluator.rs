//! Incremental iteration-time evaluation for the MCMC strategy search.
//!
//! [`crate::costmodel::estimate_iteration_time`] walks the whole model —
//! every operator for the compute load, every DAG edge for the
//! model-parallel demand matrix — even though each MCMC proposal mutates
//! exactly one operator's placement. [`CostEvaluator`] caches the
//! per-operator contributions to every term of the estimate against a fixed
//! [`TopologyView`] and re-evaluates only the delta of the mutated operator:
//!
//! * **compute** — the per-server FLOP loads; a mutation touches only the
//!   servers the operator moves off/onto;
//! * **AllReduce** — with per-operator placements, replicated operators
//!   always synchronise over the full server set, so the (single) group's
//!   volume is a running sum of replicated parameter bytes;
//! * **model-parallel** — an integer count of contributing DAG-edge
//!   transfers per pair (so "pair has demand" stays exact under removal,
//!   with no float subtraction involved), per-server egress/ingress, the
//!   hop-taxed bit total, and a histogram of active pairs per hop distance
//!   (so `max_hops` and reachability survive removals).
//!
//! A mutation is applied with [`CostEvaluator::set_placement`] and undone by
//! calling it again with the returned previous kind — the mutate-and-revert
//! loop in [`crate::mcmc::search_strategy`] never clones the strategy except
//! when a new best is recorded. Contribution arithmetic is shared with
//! [`crate::traffic::extract_traffic`] (one enumeration routine), so the
//! incremental estimate tracks the full estimator to float round-off; the
//! equivalence proptest in `tests/evaluator.rs` pins that down.

use crate::costmodel::{ComputeParams, IterationEstimate, TopologyView};
use crate::placement::{ParallelizationStrategy, PlacementKind};
use crate::traffic::for_each_edge_transfer;
use std::collections::BTreeMap;
use topoopt_models::{DnnModel, OpId};

/// Incrementally-maintained iteration-time estimate of one strategy.
#[derive(Debug, Clone)]
pub struct CostEvaluator<'a> {
    model: &'a DnnModel,
    view: &'a TopologyView,
    params: &'a ComputeParams,
    strategy: ParallelizationStrategy,
    /// Consumer adjacency (op -> ops listing it as an input), with the same
    /// multiplicity as the model's `inputs` lists.
    consumers: Vec<Vec<OpId>>,
    local_batch: f64,
    global_batch: f64,
    /// Per-server FLOP load (the compute term before the max/roofline).
    load: Vec<f64>,
    /// Parameter bytes of replicated operators (the one AllReduce group).
    replicated_param_bytes: f64,
    /// Replicated operators with positive parameter bytes — the exact
    /// "group exists" predicate, immune to float residue.
    replicated_param_ops: usize,
    /// Slowest member NIC bandwidth over all servers (the group minimum).
    min_server_bw: f64,
    /// Contributing DAG-edge transfers per pair (`src * n + dst`); a pair
    /// carries demand iff its count is non-zero. Only the count is needed:
    /// the estimate reads pair demand through the egress/ingress/taxed-bits
    /// aggregates, never per pair.
    mp_count: Vec<u32>,
    egress: Vec<f64>,
    ingress: Vec<f64>,
    /// Σ bytes·8·hops over reachable pairs (the bandwidth-tax numerator).
    taxed_bits: f64,
    /// Active (count > 0) pair tally per hop distance; `usize::MAX` tracks
    /// unreachable pairs.
    hops_pairs: BTreeMap<usize, usize>,
    /// Scratch buffer for edge-transfer enumeration (reused across calls).
    scratch: Vec<(usize, usize, f64)>,
}

impl<'a> CostEvaluator<'a> {
    /// Build the cached contributions of `strategy` with one full pass over
    /// the model (the same work as one call to the full estimator).
    pub fn new(
        model: &'a DnnModel,
        strategy: ParallelizationStrategy,
        view: &'a TopologyView,
        params: &'a ComputeParams,
    ) -> Self {
        let n = strategy.num_servers;
        let local_batch = (model.batch_per_gpu * params.gpus_per_server) as f64;
        let global_batch = local_batch * n as f64;
        let mut consumers: Vec<Vec<OpId>> = vec![Vec::new(); model.num_ops()];
        for (consumer_id, node) in model.ops.iter().enumerate() {
            for &producer_id in &node.inputs {
                consumers[producer_id].push(consumer_id);
            }
        }
        let mut ev = CostEvaluator {
            model,
            view,
            params,
            strategy,
            consumers,
            local_batch,
            global_batch,
            load: vec![0.0; n],
            replicated_param_bytes: 0.0,
            replicated_param_ops: 0,
            min_server_bw: (0..n).map(|s| view.server_bandwidth(s)).fold(f64::INFINITY, f64::min),
            mp_count: vec![0; n * n],
            egress: vec![0.0; n],
            ingress: vec![0.0; n],
            taxed_bits: 0.0,
            hops_pairs: BTreeMap::new(),
            scratch: Vec::new(),
        };
        for op in 0..model.num_ops() {
            let kind = ev.strategy.placements[op].kind.clone();
            ev.apply_load(op, &kind, 1.0);
            ev.apply_params(op, &kind, 1);
        }
        // Enumerate every DAG edge exactly once (consumer-side iteration,
        // mirroring `extract_traffic`).
        for consumer_id in 0..model.num_ops() {
            for i in 0..model.ops[consumer_id].inputs.len() {
                let producer_id = model.ops[consumer_id].inputs[i];
                ev.apply_edge(producer_id, consumer_id, None, 1.0);
            }
        }
        ev
    }

    /// The strategy currently loaded in the evaluator.
    pub fn strategy(&self) -> &ParallelizationStrategy {
        &self.strategy
    }

    /// Consume the evaluator, returning its strategy.
    pub fn into_strategy(self) -> ParallelizationStrategy {
        self.strategy
    }

    /// Change one operator's placement, re-evaluating only the contributions
    /// that operator touches, and return the previous placement (pass it
    /// back in to revert a rejected proposal).
    pub fn set_placement(&mut self, op: OpId, kind: PlacementKind) -> PlacementKind {
        let old = self.strategy.placements[op].kind.clone();
        if old == kind {
            return old;
        }
        // Remove the operator's old contributions (other endpoints of its
        // DAG edges are unchanged, so the current strategy describes them).
        self.apply_load(op, &old, -1.0);
        self.apply_params(op, &old, -1);
        self.apply_incident_edges(op, &old, -1.0);
        // Install the new placement and add the new contributions.
        self.apply_load(op, &kind, 1.0);
        self.apply_params(op, &kind, 1);
        self.apply_incident_edges(op, &kind, 1.0);
        self.strategy.placements[op].kind = kind;
        old
    }

    /// The iteration-time estimate of the current strategy, assembled from
    /// the cached contributions in O(servers) time.
    pub fn estimate(&self) -> IterationEstimate {
        let n = self.strategy.num_servers;
        let compute_s = self.load.iter().cloned().fold(0.0, f64::max) / self.params.server_flops();

        let mut allreduce_s = 0.0;
        if n > 1 && self.replicated_param_ops > 0 {
            let k = n as f64;
            let bits = self.replicated_param_bytes * 8.0;
            allreduce_s =
                2.0 * (k - 1.0) * (self.params.alpha_s + bits / k / self.min_server_bw.max(1.0));
        }

        let mut mp_s = 0.0f64;
        for s in 0..n {
            let bw = self.view.server_bandwidth(s).max(1.0);
            mp_s = mp_s.max(self.egress[s] * 8.0 / bw).max(self.ingress[s] * 8.0 / bw);
        }
        mp_s = mp_s.max(self.taxed_bits / self.view.total_bandwidth().max(1.0));
        if self.hops_pairs.values().any(|&c| c > 0) {
            let max_hops =
                self.hops_pairs.keys().rev().find(|&&h| h != usize::MAX).copied().unwrap_or(0);
            mp_s += self.params.alpha_s * max_hops as f64;
        }
        if self.hops_pairs.contains_key(&usize::MAX) {
            mp_s = f64::INFINITY;
        }

        let total_s = compute_s + allreduce_s + mp_s;
        IterationEstimate { compute_s, allreduce_s, mp_s, total_s }
    }

    /// Compute-load contribution of one operator under `kind`, signed.
    fn apply_load(&mut self, op: OpId, kind: &PlacementKind, sign: f64) {
        let flops = self.model.ops[op].op.total_flops();
        match kind {
            PlacementKind::Replicated => {
                let delta = sign * flops * self.local_batch;
                for l in self.load.iter_mut() {
                    *l += delta;
                }
            }
            PlacementKind::Single(s) => {
                self.load[*s] += sign * flops * self.global_batch;
            }
            PlacementKind::Sharded(v) => {
                let delta = sign * flops * self.global_batch / v.len() as f64;
                for &s in v {
                    self.load[s] += delta;
                }
            }
        }
    }

    /// AllReduce-volume contribution of one operator under `kind`, signed.
    fn apply_params(&mut self, op: OpId, kind: &PlacementKind, sign: i64) {
        let node = &self.model.ops[op].op;
        if !node.has_params() || !matches!(kind, PlacementKind::Replicated) {
            return;
        }
        let bytes = node.param_bytes();
        self.replicated_param_bytes += sign as f64 * bytes;
        if bytes > 0.0 {
            if sign > 0 {
                self.replicated_param_ops += 1;
            } else {
                self.replicated_param_ops -= 1;
            }
        }
        if self.replicated_param_ops == 0 {
            // Snap float residue so an all-model-parallel strategy reports
            // exactly zero AllReduce volume, like the full extractor.
            self.replicated_param_bytes = 0.0;
        }
    }

    /// Apply every DAG edge incident to `op` (as producer or consumer),
    /// using `kind` for `op`'s side of each edge, signed.
    fn apply_incident_edges(&mut self, op: OpId, kind: &PlacementKind, sign: f64) {
        for i in 0..self.model.ops[op].inputs.len() {
            let producer = self.model.ops[op].inputs[i];
            self.apply_edge(producer, op, Some((op, kind)), sign);
        }
        for i in 0..self.consumers[op].len() {
            let consumer = self.consumers[op][i];
            self.apply_edge(op, consumer, Some((op, kind)), sign);
        }
    }

    /// Apply one producer→consumer edge's transfers, signed. `override_kind`
    /// substitutes the placement of the named operator (the one being
    /// mutated); the other endpoint reads the current strategy.
    fn apply_edge(
        &mut self,
        producer: OpId,
        consumer: OpId,
        override_kind: Option<(OpId, &PlacementKind)>,
        sign: f64,
    ) {
        let act_bytes = self.model.ops[producer].op.activation_bytes();
        if act_bytes <= 0.0 {
            return;
        }
        let n = self.strategy.num_servers;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        {
            let kind_of = |id: OpId| -> &PlacementKind {
                match override_kind {
                    Some((op, kind)) if op == id => kind,
                    _ => &self.strategy.placements[id].kind,
                }
            };
            for_each_edge_transfer(
                kind_of(producer),
                kind_of(consumer),
                act_bytes,
                self.local_batch,
                self.global_batch,
                n,
                |src, dst, bytes| scratch.push((src, dst, bytes)),
            );
        }
        for &(src, dst, bytes) in &scratch {
            self.apply_pair(src, dst, bytes, sign);
        }
        self.scratch = scratch;
    }

    /// Add/remove one pair transfer from the demand-matrix aggregates.
    fn apply_pair(&mut self, src: usize, dst: usize, bytes: f64, sign: f64) {
        let n = self.strategy.num_servers;
        let idx = src * n + dst;
        let (hops, _) = self.view.path_info(src, dst);
        self.egress[src] += sign * bytes;
        self.ingress[dst] += sign * bytes;
        if hops != usize::MAX {
            self.taxed_bits += sign * bytes * 8.0 * hops as f64;
        }
        if sign > 0.0 {
            if self.mp_count[idx] == 0 {
                *self.hops_pairs.entry(hops).or_insert(0) += 1;
            }
            self.mp_count[idx] += 1;
        } else {
            self.mp_count[idx] -= 1;
            if self.mp_count[idx] == 0 {
                let stale = {
                    let c = self.hops_pairs.get_mut(&hops).expect("pair tally underflow");
                    *c -= 1;
                    *c == 0
                };
                if stale {
                    self.hops_pairs.remove(&hops);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::estimate_iteration_time;
    use topoopt_models::zoo::{build_dlrm, build_model};
    use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};

    fn close(a: f64, b: f64) -> bool {
        if a.is_infinite() || b.is_infinite() {
            return a == b;
        }
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    fn assert_matches_full(
        ev: &CostEvaluator<'_>,
        model: &DnnModel,
        view: &TopologyView,
        params: &ComputeParams,
    ) {
        let fast = ev.estimate();
        let full = estimate_iteration_time(model, ev.strategy(), view, params);
        assert!(close(fast.compute_s, full.compute_s), "compute {fast:?} vs {full:?}");
        assert!(close(fast.allreduce_s, full.allreduce_s), "allreduce {fast:?} vs {full:?}");
        assert!(close(fast.mp_s, full.mp_s), "mp {fast:?} vs {full:?}");
        assert!(close(fast.total_s, full.total_s), "total {fast:?} vs {full:?}");
    }

    #[test]
    fn fresh_evaluator_matches_full_estimator() {
        let p = ComputeParams::default();
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 100.0e9 };
        for kind in [ModelKind::Dlrm, ModelKind::Ncf, ModelKind::Bert, ModelKind::Vgg16] {
            let m = build_model(kind, ModelPreset::Shared);
            for s in [
                ParallelizationStrategy::pure_data_parallel(&m, 16),
                ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 16),
            ] {
                let ev = CostEvaluator::new(&m, s, &view, &p);
                assert_matches_full(&ev, &m, &view, &p);
            }
        }
    }

    #[test]
    fn mutate_and_revert_restores_the_estimate() {
        let m = build_dlrm(&DlrmConfig::shared());
        let p = ComputeParams::default();
        let view = TopologyView::FullMesh { n: 16, per_server_bps: 25.0e9 };
        let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, 16);
        let mut ev = CostEvaluator::new(&m, s.clone(), &view, &p);
        let before = ev.estimate();
        let op = m.embedding_ops()[0];
        let old = ev.set_placement(op, PlacementKind::Replicated);
        assert_ne!(ev.estimate().total_s, before.total_s);
        assert_matches_full(&ev, &m, &view, &p);
        ev.set_placement(op, old);
        let after = ev.estimate();
        assert!(close(before.total_s, after.total_s), "{before:?} vs {after:?}");
        assert_eq!(ev.strategy(), &s);
    }

    #[test]
    fn tracks_disconnected_views_exactly() {
        // Moving an op onto an isolated server must flip mp_s to infinity,
        // and moving it back must restore a finite estimate (pair counts
        // make reachability exact under removal).
        let m = build_dlrm(&DlrmConfig::shared());
        let p = ComputeParams::default();
        let mut g = topoopt_graph::Graph::new(4);
        g.add_bidi_edge(0, 1, 100.0e9);
        g.add_bidi_edge(1, 2, 100.0e9); // server 3 is isolated
        let view = TopologyView::from_graph(&g, 4);
        let s = ParallelizationStrategy::pure_data_parallel(&m, 4);
        let mut ev = CostEvaluator::new(&m, s, &view, &p);
        let op = m.embedding_ops()[0];
        ev.set_placement(op, PlacementKind::Single(3));
        assert!(ev.estimate().mp_s.is_infinite());
        assert_matches_full(&ev, &m, &view, &p);
        // Back to replicated: no MP traffic at all, so the estimate must
        // return to a finite value (the unreachable-pair tally drains).
        ev.set_placement(op, PlacementKind::Replicated);
        assert!(ev.estimate().mp_s.is_finite());
        assert_matches_full(&ev, &m, &view, &p);
    }

    #[test]
    fn all_model_parallel_strategy_reports_zero_allreduce() {
        let m = build_model(ModelKind::Ncf, ModelPreset::Shared);
        let p = ComputeParams::default();
        let view = TopologyView::FullMesh { n: 8, per_server_bps: 50.0e9 };
        let s = ParallelizationStrategy::pure_data_parallel(&m, 8);
        let mut ev = CostEvaluator::new(&m, s, &view, &p);
        for op in 0..m.num_ops() {
            ev.set_placement(op, PlacementKind::Single(op % 8));
        }
        let est = ev.estimate();
        assert_eq!(est.allreduce_s, 0.0);
        assert_matches_full(&ev, &m, &view, &p);
    }
}
