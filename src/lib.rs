//! # TopoOpt — co-optimizing network topology and parallelization strategy
//!
//! A from-scratch Rust reproduction of *TopoOpt: Co-optimizing Network
//! Topology and Parallelization Strategy for Distributed Training Jobs*
//! (NSDI 2023). This facade crate re-exports the whole workspace so a
//! downstream user only needs one dependency:
//!
//! ```rust
//! use topoopt::prelude::*;
//!
//! // 1. Pick a DNN from the model zoo (§5.1, List 1 configurations).
//! let model = build_model(ModelKind::Dlrm, ModelPreset::Shared);
//!
//! // 2. Co-optimize the parallelization strategy and the topology for a
//! //    16-server job with 4 x 25 Gbps interfaces per server (§4).
//! let mut cfg = AlternatingConfig::new(4, 25.0e9);
//! cfg.max_rounds = 2;
//! cfg.mcmc.iterations = 50;
//! let result = co_optimize(&model, 16, &cfg);
//! assert!(result.network.graph.is_strongly_connected());
//!
//! // 3. Simulate a training iteration on the resulting fabric (§5).
//! let plans: Vec<AllReducePlan> = result
//!     .network
//!     .groups
//!     .iter()
//!     .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
//!     .collect();
//! let net = SimNetwork::new(result.network.graph.clone(), 16, result.network.routing.clone());
//! let iteration = simulate_iteration(
//!     &net,
//!     &result.demands,
//!     &plans,
//!     &IterationParams { compute_s: result.estimate.compute_s },
//! );
//! assert!(iteration.total_s.is_finite());
//! ```
//!
//! ## Workspace layout
//!
//! | Crate | Role |
//! |---|---|
//! | `topoopt-graph` | graphs, matching, paths, canonical topologies |
//! | `topoopt-models` | DNN model zoo (DLRM, CANDLE, BERT, NCF, ResNet-50, VGG) |
//! | `topoopt-collectives` | AllReduce algorithms, ring permutations, timing models |
//! | `topoopt-strategy` | FlexNet-style MCMC parallelization strategy search |
//! | `topoopt-core` | TotientPerms, SelectPermutations, TopologyFinder, CoinChangeMod, OCS-reconfig, alternating optimization |
//! | `topoopt-netsim` | flow-level network simulator (dedicated, shared, reconfigurable) |
//! | `topoopt-cost` | component prices and interconnect cost model |
//! | `topoopt-cluster` | sharding, look-ahead provisioning, job scheduling |
//! | `topoopt-rdma` | NPAR host-based RDMA forwarding model |
//! | `topoopt-reconfig` | safe patch-panel migration planning (Snowcap-style) |
//! | `topoopt-workloads` | synthetic production traces, heatmaps, time-to-accuracy |
//!
//! See `README.md` for the workspace inventory, and `EXPERIMENTS.md` for
//! the paper-vs-measured results index (regenerate it with
//! `cargo run --release -p topoopt-bench --bin reproduce -- all --md`).

pub mod export;

pub use topoopt_cluster as cluster;
pub use topoopt_collectives as collectives;
pub use topoopt_core as core;
pub use topoopt_cost as cost;
pub use topoopt_graph as graph;
pub use topoopt_models as models;
pub use topoopt_netsim as netsim;
pub use topoopt_rdma as rdma;
pub use topoopt_reconfig as reconfig;
pub use topoopt_strategy as strategy;
pub use topoopt_workloads as workloads;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use crate::export::{CoOptimizationExport, ForwardingExport, TopologyExport};
    pub use topoopt_collectives::ring::RingPermutation;
    pub use topoopt_collectives::timing::{allreduce_time, AllReduceAlgo, TimingParams};
    pub use topoopt_core::alternating::{co_optimize, AlternatingConfig, CoOptResult};
    pub use topoopt_core::architectures::{build_architecture, Architecture, BuiltNetwork};
    pub use topoopt_core::coinchange::{coin_change_route, CoinChangeTable};
    pub use topoopt_core::ocs_reconfig::{
        ocs_reconfig_topology, sipml_topology, OcsReconfigConfig,
    };
    pub use topoopt_core::routing::Routing;
    pub use topoopt_core::select::{select_for_group, select_permutations};
    pub use topoopt_core::topology_finder::{
        topology_finder, TopologyFinderInput, TopologyFinderOutput,
    };
    pub use topoopt_core::totient::{euler_totient, totient_perms, TotientPermsConfig};
    pub use topoopt_cost::{equivalent_fat_tree_bandwidth, interconnect_cost, CostedArchitecture};
    pub use topoopt_graph::matching::MatchingAlgo;
    pub use topoopt_graph::{Graph, TrafficMatrix};
    pub use topoopt_models::{build_model, DnnModel, ModelKind, ModelPreset};
    pub use topoopt_netsim::{
        simulate_dynamic_cluster, simulate_iteration, simulate_reconfigurable_iteration,
        simulate_shared_cluster, AllReducePlan, DynamicClusterParams, DynamicEngineStats,
        DynamicFabric, DynamicJobSpec, FluidEngine, IterationParams, MigrationMode, ReconfigParams,
        SharedEngineMode, SimNetwork,
    };
    pub use topoopt_reconfig::{
        FabricSpec, MigrationPlanner, MigrationProblem, RuleRepair, TreeSearch,
    };
    pub use topoopt_strategy::{
        estimate_iteration_time, extract_traffic, search_strategy, ComputeParams, McmcConfig,
        ParallelizationStrategy, TopologyView, TrafficDemands,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        let model = build_model(ModelKind::ResNet50, ModelPreset::Testbed);
        assert_eq!(model.name, "ResNet50");
        assert_eq!(euler_totient(12), 4);
        let g = Graph::new(4);
        assert_eq!(g.num_nodes(), 4);
    }
}
