//! JSON export of fabrics: topology adjacency, NPAR forwarding rules, and
//! co-optimization results, serialized through the workspace's `serde`
//! mini-framework so external tooling (and the CI round-trip smoke test)
//! can consume them.
//!
//! This is the `quickstart --json <dir>` schema:
//!
//! * `topology.json` — [`TopologyExport`]: server count plus every directed
//!   physical link with its capacity;
//! * `forwarding.json` — [`ForwardingExport`]: the destination-keyed kernel
//!   rule set, the per-pair relay histogram, and any next-hop conflicts;
//! * `cooptimization.json` — [`CoOptimizationExport`]: the alternating
//!   optimization's outcome (strategy summary, degree split, AllReduce
//!   group selections, MP links, estimated iteration breakdown).
//!
//! Every type round-trips: `from_json(to_json(x)) == x`.

use serde::{Deserialize, Serialize};
use topoopt_core::alternating::CoOptResult;
use topoopt_core::topology_finder::SelectedGroup;
use topoopt_graph::Graph;
use topoopt_rdma::{ForwardingPlan, ForwardingRule, RuleConflict};
use topoopt_strategy::IterationEstimate;

/// One directed physical link of the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkExport {
    /// Transmitting node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Link capacity in bits per second.
    pub capacity_bps: f64,
}

/// The fabric's physical adjacency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyExport {
    /// Number of server nodes (`0..num_servers`; higher ids are switches).
    pub num_servers: usize,
    /// Total node count including switches.
    pub num_nodes: usize,
    /// Every directed link (parallel links appear once each).
    pub links: Vec<LinkExport>,
}

impl TopologyExport {
    /// Snapshot a graph's adjacency.
    pub fn from_graph(graph: &Graph, num_servers: usize) -> Self {
        TopologyExport {
            num_servers,
            num_nodes: graph.num_nodes(),
            links: graph
                .edges()
                .map(|(_, e)| LinkExport { src: e.src, dst: e.dst, capacity_bps: e.capacity_bps })
                .collect(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }
}

/// One bucket of the relay histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelayBucket {
    /// Number of kernel relays crossed.
    pub relays: usize,
    /// Number of (src, dst) logical connections crossing that many.
    pub pairs: usize,
}

/// The NPAR forwarding plane of a fabric (§6, Appendix I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwardingExport {
    /// Total destination-keyed rules across all servers.
    pub num_rules: usize,
    /// Every installed rule, ordered by (server, final destination).
    pub rules: Vec<ForwardingRule>,
    /// Pairs-by-relay-count histogram (`relays = 0` are direct circuits).
    pub relay_histogram: Vec<RelayBucket>,
    /// Fraction of logical connections crossing at least one relay.
    pub relayed_fraction: f64,
    /// Destination-keyed next-hop conflicts observed while installing
    /// (first writer won; see `topoopt_rdma::RuleConflict`).
    pub conflicts: Vec<RuleConflict>,
}

impl ForwardingExport {
    /// Snapshot a forwarding plan.
    pub fn from_plan(plan: &ForwardingPlan) -> Self {
        ForwardingExport {
            num_rules: plan.num_rules(),
            rules: plan.rules.values().flat_map(|v| v.iter().cloned()).collect(),
            relay_histogram: plan
                .relay_histogram()
                .into_iter()
                .enumerate()
                .map(|(relays, pairs)| RelayBucket { relays, pairs })
                .collect(),
            relayed_fraction: plan.relayed_fraction(),
            conflicts: plan.conflicts.clone(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }
}

/// The outcome of §4.1's alternating optimization for one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoOptimizationExport {
    /// Model the job trains.
    pub model: String,
    /// Number of servers.
    pub num_servers: usize,
    /// Alternation rounds executed.
    pub rounds: usize,
    /// Operators the final strategy places model-parallel.
    pub model_parallel_ops: usize,
    /// AllReduce bytes per iteration.
    pub allreduce_bytes: f64,
    /// Model-parallel bytes per iteration.
    pub mp_bytes: f64,
    /// Interfaces allocated to the AllReduce sub-topology.
    pub degree_allreduce: usize,
    /// Interfaces allocated to the MP sub-topology.
    pub degree_mp: usize,
    /// Per-group ring selections.
    pub groups: Vec<SelectedGroup>,
    /// Matched MP pairs (one entry per physical MP link).
    pub mp_links: Vec<(usize, usize)>,
    /// Installed routing rules.
    pub routing_rules: usize,
    /// Average installed-path length in hops.
    pub average_hops: f64,
    /// Estimated iteration-time breakdown on the final topology.
    pub estimate: IterationEstimate,
}

impl CoOptimizationExport {
    /// Snapshot a co-optimization result.
    pub fn from_result(model: impl Into<String>, num_servers: usize, r: &CoOptResult) -> Self {
        CoOptimizationExport {
            model: model.into(),
            num_servers,
            rounds: r.rounds,
            model_parallel_ops: r.strategy.num_model_parallel_ops(),
            allreduce_bytes: r.demands.total_allreduce_bytes(),
            mp_bytes: r.demands.total_mp_bytes(),
            degree_allreduce: r.network.degree_allreduce,
            degree_mp: r.network.degree_mp,
            groups: r.network.groups.clone(),
            mp_links: r.network.mp_links.clone(),
            routing_rules: r.network.routing.len(),
            average_hops: r.network.routing.average_hops(),
            estimate: r.estimate,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_core::alternating::{co_optimize, AlternatingConfig};
    use topoopt_core::Routing;
    use topoopt_models::{build_model, ModelKind, ModelPreset};
    use topoopt_rdma::build_forwarding_plan;

    fn small_cooptimization() -> (Graph, ForwardingPlan, CoOptimizationExport) {
        let model = build_model(ModelKind::Candle, ModelPreset::Shared);
        let mut cfg = AlternatingConfig::new(3, 25.0e9);
        cfg.max_rounds = 1;
        cfg.mcmc.iterations = 30;
        let result = co_optimize(&model, 8, &cfg);
        let plan = build_forwarding_plan(&result.network.graph, 8, &result.network.routing);
        let export = CoOptimizationExport::from_result(model.name.clone(), 8, &result);
        (result.network.graph.clone(), plan, export)
    }

    #[test]
    fn topology_export_round_trips() {
        let (graph, _, _) = small_cooptimization();
        let export = TopologyExport::from_graph(&graph, 8);
        assert_eq!(export.num_servers, 8);
        assert_eq!(export.links.len(), graph.num_edges());
        let back = TopologyExport::from_json(&export.to_json()).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn forwarding_export_round_trips() {
        let (_, plan, _) = small_cooptimization();
        let export = ForwardingExport::from_plan(&plan);
        assert_eq!(export.num_rules, plan.num_rules());
        assert_eq!(export.rules.len(), export.num_rules);
        let pairs: usize = export.relay_histogram.iter().map(|b| b.pairs).sum();
        assert_eq!(pairs, 8 * 7, "every ordered pair of the connected fabric");
        let back = ForwardingExport::from_json(&export.to_json()).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn cooptimization_export_round_trips() {
        let (_, _, export) = small_cooptimization();
        assert!(export.estimate.total_s.is_finite());
        assert_eq!(export.degree_allreduce + export.degree_mp, 3);
        let back = CoOptimizationExport::from_json(&export.to_json()).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn forwarding_export_of_a_plain_fabric_parses_as_generic_json_too() {
        // The artifact must be consumable without the typed schema: parse
        // as a raw value tree and poke at it.
        let g = topoopt_graph::topologies::from_permutations(6, &[1], 25.0e9);
        let plan = build_forwarding_plan(&g, 6, &Routing::new());
        let text = ForwardingExport::from_plan(&plan).to_json();
        let value = serde::json::parse(&text).unwrap();
        let rules = value.get("num_rules").and_then(|v| v.as_int()).unwrap();
        assert_eq!(rules as usize, plan.num_rules());
    }
}
